package abr

import (
	"math"

	"puffer/internal/media"
	metrics "puffer/internal/obs"
)

// Controller stage timers (write-only; see the obs package contract).
// predict covers the distribution fill (a staging no-op under a deferring
// predictor — the NN time then lands in nn_packed_forward_ns instead);
// plan covers the factored value iteration.
var (
	mpcPredictNS = metrics.Default.Histogram("abr_mpc_predict_ns")
	mpcPlanNS    = metrics.Default.Histogram("abr_mpc_plan_ns")
)

// Predictor supplies the MPC engine with a probability distribution over the
// transmission time of a proposed chunk. Deterministic predictors (harmonic
// mean) return a one-hot distribution; the TTP returns its full softmax.
type Predictor interface {
	// PredictDist fills dist (length NumBins) with the probability that
	// sending a chunk of the given size, `step` positions ahead of the
	// current decision (step 0 = the chunk being decided), lands in each
	// transmission-time bin.
	PredictDist(obs *Observation, step int, size float64, dist []float64)
}

// BatchPredictor is implemented by predictors that can fill the
// distributions for every candidate size of one horizon step in a single
// call. The MPC issues one batched call per horizon net instead of nQ
// scalar calls, which lets NN-backed predictors run one matrix-matrix pass
// per layer over all quality levels.
type BatchPredictor interface {
	Predictor
	// PredictDistBatch fills dists[q*NumBins:(q+1)*NumBins] with the
	// transmission-time distribution for sizes[q], for every q. It must
	// produce exactly the same distributions as len(sizes) PredictDist
	// calls would.
	PredictDistBatch(obs *Observation, step int, sizes []float64, dists []float64)
}

// MPC is the paper's §4.4 controller: a stochastic model-predictive
// controller maximizing expected cumulative QoE (Equation 1) over a lookahead
// horizon by value iteration over a discretized buffer, shared verbatim by
// MPC-HM, RobustMPC-HM, and Fugu (only the Predictor differs).
//
// Choose runs the production path: a batched distribution fill (one
// BatchPredictor call per horizon step when the predictor supports it)
// followed by an iterative backward value iteration that factors the
// prediction expectation out of the previous-quality dimension — the
// expected-stall and continuation terms of a candidate quality do not depend
// on which quality preceded it, so they are computed once per (step, q,
// buffer) instead of once per (step, q, buffer, prevQ). ChooseReference
// keeps the original per-call fill and memoized recursion for differential
// tests and as the benchmark baseline.
type MPC struct {
	AlgName string
	Pred    Predictor
	Weights QoEWeights
	Horizon int     // lookahead chunks (paper: 5)
	BufStep float64 // buffer discretization (seconds per bin)

	// scratch, reused across decisions
	dists  []float64 // predicted distributions, indexed (step*nQ+q)*NumBins
	sizes  []float64 // candidate sizes for one step's batched fill
	nBuf   int
	bufCap float64
	// pendH/pendNQ carry the horizon dimensions from PrepareChoose to
	// FinishChoose.
	pendH, pendNQ int

	// factored value-iteration scratch
	nextTab []int32   // (bb*NumBins+k), k < k0Tab[bb] -> next buffer bin from bb on outcome k
	k0Tab   []int32   // bb -> first outcome bin that stalls from quantized buffer bb
	suffP   []float64 // suffix sums over one distribution: suffP[k] = Σ_{j>=k} p_j
	suffTT  []float64 // suffTT[k] = Σ_{j>=k} p_j·tt_j
	vCur    []float64 // value planes, indexed prevQ*nBuf+bufBin
	vNext   []float64
	base    []float64 // (q*nBuf+bb) -> expected stall penalty + continuation
	qual    []float64 // (q*nQ+prevQ) -> quality and variation terms
	sumP    []float64 // per-q distribution mass (1 up to rounding)

	// reference-path scratch (memoized recursion), allocated on first use
	refValue   []float64
	refVisited []bool
}

// NewMPC builds the controller with the paper's defaults: horizon 5,
// 0.25-second buffer bins.
func NewMPC(name string, pred Predictor, w QoEWeights) *MPC {
	return &MPC{AlgName: name, Pred: pred, Weights: w, Horizon: 5, BufStep: 0.25}
}

// Name implements Algorithm.
func (m *MPC) Name() string { return m.AlgName }

// Reset implements Algorithm.
func (m *MPC) Reset() {
	if r, ok := m.Pred.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// horizonDims clamps the planning horizon to the observation and returns
// (h, nQ); h == 0 means there is nothing to decide.
func (m *MPC) horizonDims(obs *Observation) (int, int) {
	h := m.Horizon
	if h > len(obs.Horizon) {
		h = len(obs.Horizon)
	}
	if h == 0 {
		return 0, 0
	}
	return h, len(obs.Horizon[0].Versions)
}

// Choose implements Algorithm: it plans a trajectory over the horizon and
// returns the first step's rung.
func (m *MPC) Choose(obs *Observation) int {
	m.PrepareChoose(obs)
	return m.FinishChoose(obs)
}

// PrepareChoose implements DeferredAlgorithm: it sizes the planning tables
// and fills (or, with a deferring predictor, stages) the horizon's
// transmission-time distributions. Choose is exactly PrepareChoose followed
// by FinishChoose, so splitting a decision around an external batched
// inference service changes nothing about its outcome.
func (m *MPC) PrepareChoose(obs *Observation) {
	h, nQ := m.horizonDims(obs)
	m.pendH, m.pendNQ = h, nQ
	if h == 0 {
		return
	}
	m.ensureScratch(obs.BufferCap, h, nQ)
	t0 := metrics.Now()
	m.fillDists(obs, h, nQ)
	mpcPredictNS.ObserveSince(t0)
}

// FinishChoose implements DeferredAlgorithm: it runs the value iteration
// over the distributions prepared (and by now filled) for obs.
func (m *MPC) FinishChoose(obs *Observation) int {
	if m.pendH == 0 {
		return 0
	}
	t0 := metrics.Now()
	q := m.plan(obs, m.pendH, m.pendNQ)
	mpcPlanNS.ObserveSince(t0)
	return q
}

// fillDists computes each of the h*nQ transmission-time distributions
// exactly once; predictions depend only on (step, proposed size), not on the
// planner's state. Batch-capable predictors get one call per horizon step.
func (m *MPC) fillDists(obs *Observation, h, nQ int) {
	if bp, ok := m.Pred.(BatchPredictor); ok {
		sizes := m.sizes[:nQ]
		for step := 0; step < h; step++ {
			for q := 0; q < nQ; q++ {
				sizes[q] = obs.Horizon[step].Versions[q].Size
			}
			bp.PredictDistBatch(obs, step, sizes, m.dists[step*nQ*NumBins:(step+1)*nQ*NumBins])
		}
		return
	}
	for step := 0; step < h; step++ {
		for q := 0; q < nQ; q++ {
			m.Pred.PredictDist(obs, step, obs.Horizon[step].Versions[q].Size, m.distFor(step, q, nQ))
		}
	}
}

// distFor returns the cached distribution slice for (step, quality).
func (m *MPC) distFor(step, q, nQ int) []float64 {
	at := (step*nQ + q) * NumBins
	return m.dists[at : at+NumBins]
}

// ensureScratch sizes the planning tables for this decision's dimensions.
func (m *MPC) ensureScratch(bufCap float64, h, nQ int) {
	if bufCap <= 0 {
		bufCap = 15
	}
	m.bufCap = bufCap
	m.nBuf = int(bufCap/m.BufStep) + 1
	if distNeed := h * nQ * NumBins; cap(m.dists) < distNeed {
		m.dists = make([]float64, distNeed)
	} else {
		m.dists = m.dists[:distNeed]
	}
	m.sizes = grow(m.sizes, nQ)
	m.nextTab = grow(m.nextTab, m.nBuf*NumBins)
	m.k0Tab = grow(m.k0Tab, m.nBuf)
	m.suffP = grow(m.suffP, NumBins+1)
	m.suffTT = grow(m.suffTT, NumBins+1)
	m.vCur = grow(m.vCur, m.nBuf*nQ)
	m.vNext = grow(m.vNext, m.nBuf*nQ)
	m.base = grow(m.base, nQ*m.nBuf)
	m.qual = grow(m.qual, nQ*nQ)
	m.sumP = grow(m.sumP, nQ)
}

// grow resizes s to n elements, reusing capacity when possible.
func grow[T int32 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// plan runs the factored backward value iteration and returns the best rung
// for the root step. It is algebraically identical to the reference
// recursion: for a candidate quality q at step s from quantized buffer b,
//
//	v(q | b, prevQ) = Σ_k p[k]·(ssim_q − λ|ssim_q − ssim_prevQ| − µ·stall(k,b) + V_{s+1}(next(k,b), q))
//
// and only the first two terms depend on prevQ, so the per-(q,b) expectation
// is hoisted out of the prevQ loop.
//
// The expected-stall and tail-continuation terms are suffix-summed: from
// buffer b, exactly the outcome bins k ≥ k0(b) (those with tt_k > b) stall,
// contributing Σ p_k·(tt_k − b) = suffTT[k0] − b·suffP[k0]; and every
// stalling outcome drains the buffer to empty, so its successor state is the
// constant one-chunk bin and its continuation is V_{s+1}(cd)·suffP[k0]. Only
// the non-stalling head bins k < k0(b) still need the per-bin successor
// lookup, which turns the O(nBuf·NumBins) base term into O(nBuf + nonzero
// head bins) per (step, quality).
func (m *MPC) plan(obs *Observation, h, nQ int) int {
	nBuf := m.nBuf
	mu, lambda := m.Weights.Mu, m.Weights.Lambda

	// Outcome tables over the quantized buffer grid: the first stalling
	// bin k0 per buffer bin (two pointers; BinValue and the buffer grid
	// are both increasing) and successor bins for the non-stalling head.
	cdBin := m.bufBin(m.nextBuffer(0, BinValue(NumBins-1))) // post-stall buffer: one chunk, capped
	k0 := 0
	for bb := 0; bb < nBuf; bb++ {
		buf := float64(bb) * m.BufStep
		for k0 < NumBins && BinValue(k0) <= buf {
			k0++
		}
		m.k0Tab[bb] = int32(k0)
		row := bb * NumBins
		for k := 0; k < k0; k++ {
			m.nextTab[row+k] = int32(m.bufBin(m.nextBuffer(buf, BinValue(k))))
		}
	}

	// Backward induction: vNext starts as V_h ≡ 0 and after the loop body
	// for step s holds V_s (value planes indexed prevQ*nBuf+bufBin).
	vCur, vNext := m.vCur, m.vNext
	for i := range vNext {
		vNext[i] = 0
	}
	for s := h - 1; s >= 1; s-- {
		for q := 0; q < nQ; q++ {
			d := m.distFor(s, q, nQ)
			m.suffP[NumBins], m.suffTT[NumBins] = 0, 0
			sp, st := 0.0, 0.0
			for k := NumBins - 1; k >= 0; k-- {
				sp += d[k]
				st += d[k] * BinValue(k)
				m.suffP[k] = sp
				m.suffTT[k] = st
			}
			m.sumP[q] = sp
			vrow := vNext[q*nBuf : (q+1)*nBuf]
			brow := m.base[q*nBuf : (q+1)*nBuf]
			vcd := vrow[cdBin]
			for bb := 0; bb < nBuf; bb++ {
				buf := float64(bb) * m.BufStep
				k0 := int(m.k0Tab[bb])
				acc := vcd*m.suffP[k0] - mu*(m.suffTT[k0]-buf*m.suffP[k0])
				nexts := m.nextTab[bb*NumBins : bb*NumBins+k0]
				for k, p := range d[:k0] {
					if p == 0 {
						continue
					}
					acc += p * vrow[nexts[k]]
				}
				brow[bb] = acc
			}
		}
		for q := 0; q < nQ; q++ {
			sq := obs.Horizon[s].Versions[q].SSIMdB
			for pq := 0; pq < nQ; pq++ {
				m.qual[q*nQ+pq] = m.sumP[q] * (sq - lambda*math.Abs(sq-obs.Horizon[s-1].Versions[pq].SSIMdB))
			}
		}
		for pq := 0; pq < nQ; pq++ {
			row := vCur[pq*nBuf : (pq+1)*nBuf]
			c0 := m.qual[pq] // q = 0
			b0 := m.base[:nBuf]
			for bb := 0; bb < nBuf; bb++ {
				row[bb] = c0 + b0[bb]
			}
			for q := 1; q < nQ; q++ {
				c := m.qual[q*nQ+pq]
				bs := m.base[q*nBuf : (q+1)*nBuf]
				for bb := 0; bb < nBuf; bb++ {
					if v := c + bs[bb]; v > row[bb] {
						row[bb] = v
					}
				}
			}
		}
		vCur, vNext = vNext, vCur
	}

	// Root step: the buffer is exact (not quantized) and the previous
	// chunk is the actually-sent one, or absent at stream start.
	bestQ, bestV := 0, math.Inf(-1)
	hasPrev := obs.LastQuality >= 0
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[0].Versions[q]
		v := 0.0
		for k, p := range m.distFor(0, q, nQ) {
			if p == 0 {
				continue
			}
			tt := BinValue(k)
			stall := math.Max(tt-obs.Buffer, 0)
			qoe := m.Weights.Chunk(enc.SSIMdB, obs.LastSSIM, stall, hasPrev)
			cont := 0.0
			if h > 1 {
				cont = vNext[q*m.nBuf+m.bufBin(m.nextBuffer(obs.Buffer, tt))]
			}
			v += p * (qoe + cont)
		}
		if v > bestV {
			bestV, bestQ = v, q
		}
	}
	return bestQ
}

// nextBuffer applies the buffer dynamics: drain during the transfer, then
// gain one chunk of playable video, capped at the client's maximum.
func (m *MPC) nextBuffer(buf, transTime float64) float64 {
	b := math.Max(buf-transTime, 0) + media.ChunkDuration
	if b > m.bufCap {
		b = m.bufCap
	}
	return b
}

func (m *MPC) bufBin(buf float64) int {
	i := int(buf/m.BufStep + 0.5)
	if i >= m.nBuf {
		i = m.nBuf - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// ChooseReference is the original controller implementation: a per-call
// scalar distribution fill followed by forward recursion with memoization
// over reachable states. It selects the same rung as Choose (the factored
// iteration only reassociates the same sums) and is retained as the
// differential-testing oracle and the scalar-path benchmark baseline.
func (m *MPC) ChooseReference(obs *Observation) int {
	h, nQ := m.horizonDims(obs)
	if h == 0 {
		return 0
	}
	m.ensureScratch(obs.BufferCap, h, nQ)
	need := h * m.nBuf * nQ
	m.refValue = grow(m.refValue, need)
	if cap(m.refVisited) < need {
		m.refVisited = make([]bool, need)
	}
	m.refVisited = m.refVisited[:need]
	for i := range m.refVisited {
		m.refVisited[i] = false
	}

	for step := 0; step < h; step++ {
		for q := 0; q < nQ; q++ {
			m.Pred.PredictDist(obs, step, obs.Horizon[step].Versions[q].Size, m.distFor(step, q, nQ))
		}
	}

	bestQ, bestV := 0, math.Inf(-1)
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[0].Versions[q]
		v := 0.0
		for k, p := range m.distFor(0, q, nQ) {
			if p == 0 {
				continue
			}
			tt := BinValue(k)
			stall := math.Max(tt-obs.Buffer, 0)
			qoe := m.Weights.Chunk(enc.SSIMdB, obs.LastSSIM, stall, obs.LastQuality >= 0)
			next := m.nextBuffer(obs.Buffer, tt)
			v += p * (qoe + m.refValueAt(obs, 1, h, nQ, next, q))
		}
		if v > bestV {
			bestV, bestQ = v, q
		}
	}
	return bestQ
}

// refValueAt is the memoized value function v*(step, buffer, prevQuality):
// the best expected QoE obtainable from horizon step `step` onward, given
// the buffer level and that the chunk at step-1 was sent at prevQ. Only
// states reachable from the root are ever computed (the paper's "forward
// recursion with memoization").
func (m *MPC) refValueAt(obs *Observation, step, h, nQ int, buf float64, prevQ int) float64 {
	if step >= h {
		return 0
	}
	bb := m.bufBin(buf)
	idx := (step*m.nBuf+bb)*nQ + prevQ
	if m.refVisited[idx] {
		return m.refValue[idx]
	}
	bufQ := float64(bb) * m.BufStep // quantized buffer for child states
	prevSSIM := obs.Horizon[step-1].Versions[prevQ].SSIMdB

	best := math.Inf(-1)
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[step].Versions[q]
		v := 0.0
		for k, p := range m.distFor(step, q, nQ) {
			if p == 0 {
				continue
			}
			tt := BinValue(k)
			stall := math.Max(tt-bufQ, 0)
			qoe := m.Weights.Chunk(enc.SSIMdB, prevSSIM, stall, true)
			next := m.nextBuffer(bufQ, tt)
			v += p * (qoe + m.refValueAt(obs, step+1, h, nQ, next, q))
		}
		if v > best {
			best = v
		}
	}
	m.refVisited[idx] = true
	m.refValue[idx] = best
	return best
}

// HarmonicMeanPredictor is the paper's "HM" predictor: future throughput is
// the harmonic mean of the last five throughput samples, giving a
// deterministic (one-hot) transmission-time distribution of size/throughput.
// With Robust set it divides the estimate by (1+maxErr), where maxErr is the
// largest relative error the HM predictor has made on this stream (decayed
// slowly), the RobustMPC lower-bound rule: one bad surprise keeps the
// controller humble for a while.
type HarmonicMeanPredictor struct {
	Robust bool
	// Window is the number of samples (paper: 5). Zero means 5.
	Window int
	// ErrDecay multiplies the remembered max error per chunk (default
	// 0.995); only used with Robust.
	ErrDecay float64

	maxErr   float64
	lastSeen int
}

// Reset clears the per-stream error memory (called by the MPC on new
// streams).
func (p *HarmonicMeanPredictor) Reset() {
	p.maxErr = 0
	p.lastSeen = 0
}

// coldStartTput is the throughput assumed before any samples exist
// (bits/s). A conservative default must still scale with chunk size — a
// fixed "worst case" time would charge every rung the same stall and push
// the controller to the top rung on the very first chunk.
const coldStartTput = 1e6

// PredictDist implements Predictor.
func (p *HarmonicMeanPredictor) PredictDist(obs *Observation, step int, size float64, dist []float64) {
	tput := p.estimate(obs)
	for i := range dist {
		dist[i] = 0
	}
	if tput <= 0 {
		tput = coldStartTput
	}
	tt := size * 8 / tput
	dist[BinIndex(tt)] = 1
}

// PredictDistBatch implements BatchPredictor: the throughput estimate is
// computed once per step instead of once per candidate size.
func (p *HarmonicMeanPredictor) PredictDistBatch(obs *Observation, step int, sizes []float64, dists []float64) {
	tput := p.estimate(obs)
	if tput <= 0 {
		tput = coldStartTput
	}
	for i := range dists {
		dists[i] = 0
	}
	for q, size := range sizes {
		dists[q*NumBins+BinIndex(size*8/tput)] = 1
	}
}

// estimate returns the (possibly robust-discounted) throughput estimate in
// bits/s, or 0 if no history exists.
func (p *HarmonicMeanPredictor) estimate(obs *Observation) float64 {
	w := p.Window
	if w == 0 {
		w = 5
	}
	hm := harmonicMeanTail(obs.History, len(obs.History), w)
	if hm <= 0 {
		return 0
	}
	if !p.Robust {
		return hm
	}
	decay := p.ErrDecay
	if decay == 0 {
		decay = 0.995
	}
	// Fold the newest completed chunk into the error memory: the HM
	// prediction it would have received is the harmonic mean of the
	// samples preceding it.
	if n := len(obs.History); n > 0 && obs.ChunkIndex > p.lastSeen {
		p.maxErr *= decay
		pred := harmonicMeanTail(obs.History, n-1, w)
		actual := obs.History[n-1].Throughput()
		if pred > 0 && actual > 0 {
			if err := math.Abs(pred-actual) / actual; err > p.maxErr {
				p.maxErr = err
			}
		}
		p.lastSeen = obs.ChunkIndex
	}
	return hm / (1 + p.maxErr)
}

// harmonicMeanTail computes the harmonic mean of the up-to-w throughput
// samples ending just before index end (exclusive).
func harmonicMeanTail(hist []ChunkRecord, end, w int) float64 {
	start := end - w
	if start < 0 {
		start = 0
	}
	n := 0
	sumInv := 0.0
	for _, r := range hist[start:end] {
		tp := r.Throughput()
		if tp <= 0 {
			continue
		}
		sumInv += 1 / tp
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sumInv
}

// NewMPCHM returns the paper's MPC-HM scheme.
func NewMPCHM() *MPC {
	return NewMPC("MPC-HM", &HarmonicMeanPredictor{}, DefaultQoEWeights())
}

// NewRobustMPCHM returns the paper's RobustMPC-HM scheme.
func NewRobustMPCHM() *MPC {
	return NewMPC("RobustMPC-HM", &HarmonicMeanPredictor{Robust: true}, DefaultQoEWeights())
}
