package experiment

import (
	"math/rand"

	"puffer/internal/media"
	"puffer/internal/netem"
	"puffer/internal/player"
)

// Env is the world a session runs in.
type Env struct {
	// Paths samples each session's network situation.
	Paths netem.Sampler
	// Channels are the available stations; each stream picks one.
	Channels []media.Profile
	// Ladder is the encoding ladder (nil = media.DefaultLadder()).
	Ladder []media.Rung
	// Watch is the viewer-behavior model.
	Watch player.WatchModel
	// BufferCap is the client buffer in seconds (Puffer: 15).
	BufferCap float64
	// LookAhead is how many upcoming chunks the server knows (>= MPC
	// horizon).
	LookAhead int
	// MaxStall aborts a stream whose single stall exceeds this many
	// seconds (the viewer has certainly left).
	MaxStall float64
	// TraceDuration is how many seconds of capacity trace to synthesize
	// per session (traces wrap, so sessions may run longer).
	TraceDuration float64
	// BadDecoderProb is the tiny per-stream probability of the
	// slow-video-decoder exclusion seen in Figure A1.
	BadDecoderProb float64
	// Clip, when non-nil, replaces live channel sources with a looping
	// pre-recorded clip (the emulation methodology of §5.2).
	Clip *media.Clip
}

// DefaultEnv is the deployment environment: Puffer-like paths, six live
// channels, the default viewer model.
func DefaultEnv() Env {
	return Env{
		Paths:          netem.PufferPaths{},
		Channels:       media.Channels(),
		Watch:          player.DefaultWatchModel(),
		BufferCap:      player.DefaultBufferCap,
		LookAhead:      5,
		MaxStall:       30,
		TraceDuration:  900,
		BadDecoderProb: 5e-5,
	}
}

// EmulationEnv is the §5.2 testbed: FCC-like traces behind a fixed 40 ms
// shell, replaying a 10-minute NBC clip. Viewer behavior still applies so
// results are comparable per-stream.
func EmulationEnv() Env {
	e := DefaultEnv()
	e.Paths = netem.FCCPaths{}
	nbc, _ := media.FindProfile("nbc")
	e.Clip = media.RecordClip(nbc, 600, 600)
	return e
}

// pickChannel selects a channel profile for a stream.
func (e *Env) pickChannel(rng *rand.Rand) media.Profile {
	if len(e.Channels) == 0 {
		return media.Channels()[0]
	}
	return e.Channels[rng.Intn(len(e.Channels))]
}

// chunkSource abstracts live sources and looping clips.
type chunkSource interface {
	Next() media.Chunk
}

// clipSource adapts a media.Clip to the chunkSource interface.
type clipSource struct {
	clip *media.Clip
	at   int
}

func (c *clipSource) Next() media.Chunk {
	ch := c.clip.At(c.at)
	c.at++
	return ch
}

// newSource builds the chunk source for one stream.
func (e *Env) newSource(rng *rand.Rand) chunkSource {
	if e.Clip != nil {
		// Start at a random offset so concurrent streams are not in
		// lockstep.
		return &clipSource{clip: e.Clip, at: rng.Intn(len(e.Clip.Chunks))}
	}
	return media.NewSource(e.Ladder, e.pickChannel(rng), rng.Int63())
}
