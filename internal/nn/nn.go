// Package nn is a small, dependency-free neural-network library sufficient
// for the Fugu Transmission Time Predictor and the Pensieve policy network:
// fully-connected layers with ReLU activations, a softmax/cross-entropy
// classification head or a linear/MSE regression head, SGD and Adam
// optimizers, per-sample weighting, and gob serialization.
//
// Everything is deterministic given a seeded *rand.Rand. All math is float64.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully-connected multi-layer perceptron. Hidden layers use ReLU;
// the output layer is linear (interpret the outputs as logits for
// classification or as raw values for regression).
//
// Fields are exported for gob serialization; treat them as read-only outside
// this package.
type MLP struct {
	// Sizes holds the layer widths, input first. A net with no hidden
	// layers (len(Sizes) == 2) is an affine model — the "linear
	// regression" ablation in the paper is exactly this.
	Sizes []int
	// W[l] is the weight matrix of layer l, row-major with shape
	// Sizes[l+1] x Sizes[l].
	W [][]float64
	// B[l] is the bias vector of layer l, length Sizes[l+1].
	B [][]float64
}

// NewMLP constructs an MLP with He-initialized weights and zero biases.
// sizes must have at least two entries (input and output width).
func NewMLP(rng *rand.Rand, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs at least input and output sizes, got %v", sizes))
	}
	for _, s := range sizes {
		if s <= 0 {
			panic(fmt.Sprintf("nn: NewMLP layer sizes must be positive, got %v", sizes))
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	m.W = make([][]float64, len(sizes)-1)
	m.B = make([][]float64, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		m.W[l] = make([]float64, out*in)
		m.B[l] = make([]float64, out)
		// He initialization suits ReLU hidden layers and is harmless
		// for the linear output layer.
		std := math.Sqrt(2.0 / float64(in))
		for i := range m.W[l] {
			m.W[l][i] = rng.NormFloat64() * std
		}
	}
	return m
}

// NumLayers returns the number of weight layers (len(Sizes)-1).
func (m *MLP) NumLayers() int { return len(m.Sizes) - 1 }

// InputSize returns the expected input vector length.
func (m *MLP) InputSize() int { return m.Sizes[0] }

// OutputSize returns the output vector length.
func (m *MLP) OutputSize() int { return m.Sizes[len(m.Sizes)-1] }

// NumParams returns the total number of scalar parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// Clone returns a deep copy of the network. Used to warm-start retraining
// from yesterday's model, as the paper does.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	c.W = make([][]float64, len(m.W))
	c.B = make([][]float64, len(m.B))
	for l := range m.W {
		c.W[l] = append([]float64(nil), m.W[l]...)
		c.B[l] = append([]float64(nil), m.B[l]...)
	}
	return c
}

// Workspace holds preallocated activation buffers so that repeated forward
// (and backward) passes do not allocate. A Workspace is tied to the layer
// sizes of the MLP that created it and is not safe for concurrent use.
type Workspace struct {
	sizes []int
	// acts[0] aliases nothing (input copied in); acts[l] is the
	// post-activation output of layer l-1.
	acts [][]float64
	// zs[l] is the pre-activation of layer l (length Sizes[l+1]).
	zs [][]float64
	// deltas[l] is dLoss/dz for layer l during backprop.
	deltas [][]float64
}

// NewWorkspace allocates a Workspace matching the network's layer sizes.
func (m *MLP) NewWorkspace() *Workspace {
	ws := &Workspace{sizes: m.Sizes}
	ws.acts = make([][]float64, len(m.Sizes))
	for i, s := range m.Sizes {
		ws.acts[i] = make([]float64, s)
	}
	ws.zs = make([][]float64, m.NumLayers())
	ws.deltas = make([][]float64, m.NumLayers())
	for l := 0; l < m.NumLayers(); l++ {
		ws.zs[l] = make([]float64, m.Sizes[l+1])
		ws.deltas[l] = make([]float64, m.Sizes[l+1])
	}
	return ws
}

// compatible reports whether ws was created for a net with the same shape.
func (ws *Workspace) compatible(m *MLP) bool {
	if len(ws.sizes) != len(m.Sizes) {
		return false
	}
	for i := range ws.sizes {
		if ws.sizes[i] != m.Sizes[i] {
			return false
		}
	}
	return true
}

// ForwardInto runs a forward pass using ws's buffers and returns the output
// logits. The returned slice aliases the workspace and is valid until the
// next ForwardInto call on the same workspace.
func (m *MLP) ForwardInto(ws *Workspace, x []float64) []float64 {
	if len(x) != m.InputSize() {
		panic(fmt.Sprintf("nn: input length %d, want %d", len(x), m.InputSize()))
	}
	if !ws.compatible(m) {
		panic("nn: workspace shape does not match network")
	}
	copy(ws.acts[0], x)
	last := m.NumLayers() - 1
	for l := 0; l <= last; l++ {
		in := ws.acts[l]
		z := ws.zs[l]
		w := m.W[l]
		b := m.B[l]
		nIn := m.Sizes[l]
		for o := range z {
			row := w[o*nIn : (o+1)*nIn]
			sum := b[o]
			for i, xi := range in {
				sum += row[i] * xi
			}
			z[o] = sum
		}
		out := ws.acts[l+1]
		if l == last {
			copy(out, z)
		} else {
			for i, v := range z {
				if v > 0 {
					out[i] = v
				} else {
					out[i] = 0
				}
			}
		}
	}
	return ws.acts[len(ws.acts)-1]
}

// Forward runs a forward pass, allocating a fresh output slice. Convenient
// for tests and cold paths; hot paths should use ForwardInto.
func (m *MLP) Forward(x []float64) []float64 {
	ws := m.NewWorkspace()
	out := m.ForwardInto(ws, x)
	return append([]float64(nil), out...)
}

// PredictDist runs a forward pass and softmaxes the logits into dst,
// returning a probability distribution over the output classes. dst must
// have length OutputSize; if nil, a new slice is allocated.
func (m *MLP) PredictDist(ws *Workspace, x []float64, dst []float64) []float64 {
	logits := m.ForwardInto(ws, x)
	if dst == nil {
		dst = make([]float64, len(logits))
	}
	Softmax(dst, logits)
	return dst
}
