package stats

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// These tests pin the cross-process transport contract the dist engine
// leans on: the accumulators gob-encode deterministically, survive the
// round trip exactly, and merging decoded halves in order reproduces the
// locally built whole — so shipping accumulator blobs between processes
// can never perturb a result.

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamAccGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var a StreamAcc
	for _, p := range randPoints(rng, 200) {
		a.Add(p)
	}
	b := gobBytes(t, &a)
	if !bytes.Equal(b, gobBytes(t, &a)) {
		t.Fatal("StreamAcc gob encoding is not deterministic")
	}
	var got StreamAcc
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, a.Points) {
		t.Fatal("StreamAcc changed across the gob round trip")
	}
}

func TestWeightedAccGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	var a WeightedAcc
	for i := 0; i < 200; i++ {
		a.Add(rng.NormFloat64(), 1+rng.ExpFloat64())
	}
	b := gobBytes(t, &a)
	if !bytes.Equal(b, gobBytes(t, &a)) {
		t.Fatal("WeightedAcc gob encoding is not deterministic")
	}
	var got WeightedAcc
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Values, a.Values) || !reflect.DeepEqual(got.Weights, a.Weights) {
		t.Fatal("WeightedAcc changed across the gob round trip")
	}
}

// TestStreamAccWireMergeOrder: two shards built locally, shipped through
// gob, and merged in shard order equal the accumulator built in one
// process — and the merged encoding is itself the canonical bytes.
func TestStreamAccWireMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randPoints(rng, 300)

	var whole StreamAcc
	for _, p := range pts {
		whole.Add(p)
	}

	var s0, s1 StreamAcc
	for _, p := range pts[:140] {
		s0.Add(p)
	}
	for _, p := range pts[140:] {
		s1.Add(p)
	}
	var d0, d1 StreamAcc
	if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, &s0))).Decode(&d0); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(bytes.NewReader(gobBytes(t, &s1))).Decode(&d1); err != nil {
		t.Fatal(err)
	}
	var merged StreamAcc
	merged.Merge(&d0)
	merged.Merge(&d1)

	if !bytes.Equal(gobBytes(t, &merged), gobBytes(t, &whole)) {
		t.Fatal("wire-merged StreamAcc is not byte-identical to the locally built whole")
	}
	rngA, rngB := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	if merged.Bootstrap(rngA, 200, 0.95) != whole.Bootstrap(rngB, 200, 0.95) {
		t.Fatal("wire-merged bootstrap differs from the locally built whole")
	}
}
