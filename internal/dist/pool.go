package dist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"time"

	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/obs"
)

// PoolConfig configures a coordinator-side worker pool.
type PoolConfig struct {
	// Workers is the number of worker processes (0 means GOMAXPROCS).
	// A day never launches more workers than it has shards.
	Workers int
	// Command launches one worker process (argv; Command[0] is the
	// binary). Workers speak the protocol on stdin/stdout; stderr is
	// inherited.
	Command []string
	// Spec is the canonical spec JSON broadcast in the hello frame.
	Spec []byte
	// ShardTimeout bounds one shard assignment (and the claim before
	// it); a worker that exceeds it is presumed hung, killed, and its
	// shard reassigned. 0 disables the deadline.
	ShardTimeout time.Duration
	// MaxRestarts bounds worker replacements over the pool's lifetime
	// (a crash-looping fleet must abort, not spin). 0 means 2*Workers+2.
	MaxRestarts int
	// ExtraEnv entries are appended to each worker's environment.
	ExtraEnv []string
	// Logf, if set, receives coordinator progress lines.
	Logf func(format string, args ...any)
	// Events, if set, receives worker lifecycle events.
	Events *obs.EventLog
}

// Pool drives a fleet of local subprocess workers through days of shard
// execution. Workers persist across days: each RunDay broadcasts the day
// frame then schedules shards over the same processes. Not safe for
// concurrent RunDay calls — the daily loop is sequential by design.
type Pool struct {
	cfg      PoolConfig
	slots    []*workerProc // slot i is driven only by goroutine i during a day
	restarts int           // replacements consumed from the budget
	live     int           // live worker count (mirrors the dist_workers_live gauge)
	muR      sync.Mutex    // guards restarts and live
	day      int           // current broadcast day context
	model    []byte
	closed   bool
}

// workerProc is one live worker process and its reader goroutine.
type workerProc struct {
	slot   int
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	bw     *bufio.Writer
	frames chan frameIn // worker -> coordinator frames
}

// frameIn is one frame (or terminal read error) from a worker.
type frameIn struct {
	typ     byte
	payload []byte
	err     error
}

// fatalError marks failures that reassignment cannot fix (version or blob
// shape mismatches, worker-reported spec errors): the run must abort
// loudly instead of burning the restart budget on a deterministic failure.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// NewPool validates the config and returns a pool. Worker processes are
// launched lazily on the first RunDay, so constructing a pool is free.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Command) == 0 {
		return nil, fmt.Errorf("dist: pool needs a worker command")
	}
	if len(cfg.Spec) == 0 {
		return nil, fmt.Errorf("dist: pool needs canonical spec bytes")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 2*cfg.Workers + 2
	}
	return &Pool{cfg: cfg, slots: make([]*workerProc, cfg.Workers)}, nil
}

// logf forwards to the configured logger, if any.
func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// RunDay executes one day's trial across the pool: broadcast (day, model)
// to every worker, schedule the day's shards over them (reassigning on
// death or deadline), and merge results in shard order. The returned
// accumulator and dataset are byte-identical to the single-process
// engine's runDaySharded + DatasetCollector at the same seeds.
func (p *Pool) RunDay(day int, model *core.TTP, sessions, shardSize int) (*experiment.TrialAcc, *core.Dataset, error) {
	if p.closed {
		return nil, nil, fmt.Errorf("dist: pool is closed")
	}
	if sessions <= 0 || shardSize <= 0 {
		return nil, nil, fmt.Errorf("dist: RunDay needs positive sessions (%d) and shard size (%d)", sessions, shardSize)
	}
	var modelBytes []byte
	if model != nil {
		var buf bytes.Buffer
		if err := model.Save(&buf); err != nil {
			return nil, nil, fmt.Errorf("dist: encoding day %d model: %w", day, err)
		}
		modelBytes = buf.Bytes()
	}
	p.day, p.model = day, modelBytes

	nShards := experiment.NumShards(sessions, shardSize)
	n := len(p.slots)
	if n > nShards {
		n = nShards
	}
	// Bring up (or refresh) the workers this day needs and broadcast the
	// day context. Failures here go through the same replace budget as
	// mid-day deaths.
	for i := 0; i < n; i++ {
		if p.slots[i] == nil {
			w, err := p.startWorker(i)
			if err != nil {
				return nil, nil, err
			}
			p.slots[i] = w
		}
		if err := sendFrame(p.slots[i].bw, frameDay, dayMsg{Day: day, Model: modelBytes}); err != nil {
			if rerr := p.replace(i, fmt.Errorf("broadcasting day %d: %w", day, err)); rerr != nil {
				return nil, nil, rerr
			}
		}
	}

	run := newDayRun(nShards)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p.drive(slot, run, day, sessions, shardSize)
		}(i)
	}
	wg.Wait()
	if err := run.Err(); err != nil {
		return nil, nil, err
	}

	// The canonical aggregation: merge per-shard results in shard order.
	total := experiment.NewTrialAcc(experiment.AllPaths)
	data := &core.Dataset{}
	for s := 0; s < nShards; s++ {
		out := run.results[s]
		total.Merge(out.acc)
		data.Streams = append(data.Streams, out.data.Streams...)
	}
	return total, data, nil
}

// drive is one worker slot's scheduling loop for a day: take a shard,
// run it on the slot's worker, and on failure reassign the shard and
// replace the worker (within the restart budget).
func (p *Pool) drive(slot int, run *dayRun, day, sessions, shardSize int) {
	for {
		s, ok := run.take()
		if !ok {
			return
		}
		att := run.attempt(s)
		t0 := obs.Now()
		out, err := p.runShard(slot, assignMsg{Day: day, Shard: s, Attempt: att}, sessions, shardSize)
		if err == nil {
			shardWallNS.Observe(obs.SinceNS(t0))
			shardsDone.Inc()
			run.complete(s, out)
			continue
		}
		var fatal *fatalError
		if errors.As(err, &fatal) {
			run.abort(fatal.err)
			return
		}
		shardRetries.Inc()
		p.cfg.Events.Emit("dist_shard_reassigned", map[string]any{
			"day": day, "shard": s, "attempt": att, "worker": slot, "cause": err.Error(),
		})
		p.logf("dist: day %d shard %d attempt %d on worker %d failed: %v — reassigning", day, s, att, slot, err)
		run.requeue(s)
		if rerr := p.replace(slot, err); rerr != nil {
			run.abort(rerr)
			return
		}
	}
}

// runShard drives one assignment through slot's worker: consume its
// pending claim, assign, await the result, decode. Transport failures and
// deadline overruns return retryable errors (the caller reassigns);
// semantic mismatches return *fatalError.
func (p *Pool) runShard(slot int, a assignMsg, sessions, shardSize int) (*shardOut, error) {
	w := p.slots[slot]
	f, err := p.await(w, "claim")
	if err != nil {
		return nil, err
	}
	if f.typ != frameClaim {
		return nil, p.workerFrameError(w, f, frameClaim)
	}
	if err := sendFrame(w.bw, frameAssign, a); err != nil {
		return nil, fmt.Errorf("worker %d: sending assign: %w", slot, err)
	}
	f, err = p.await(w, fmt.Sprintf("day %d shard %d result", a.Day, a.Shard))
	if err != nil {
		return nil, err
	}
	if f.typ != frameResult {
		return nil, p.workerFrameError(w, f, frameResult)
	}
	var res resultMsg
	if err := decodePayload(f.typ, f.payload, &res); err != nil {
		return nil, err
	}
	if res.Day != a.Day || res.Shard != a.Shard || res.Attempt != a.Attempt {
		return nil, &fatalError{fmt.Errorf("dist: worker %d returned day %d shard %d attempt %d for assignment day %d shard %d attempt %d",
			slot, res.Day, res.Shard, res.Attempt, a.Day, a.Shard, a.Attempt)}
	}
	acc, data, err := DecodeShard(res.Blob)
	if err != nil {
		return nil, &fatalError{err}
	}
	return &shardOut{acc: acc, data: data}, nil
}

// workerFrameError turns an unexpected frame into an error: error frames
// carry the worker's own diagnosis (fatal — retrying re-runs the same
// deterministic failure), anything else is a protocol bug (also fatal).
func (p *Pool) workerFrameError(w *workerProc, f frameIn, want byte) error {
	if f.typ == frameError {
		var e errorMsg
		if derr := decodePayload(f.typ, f.payload, &e); derr == nil {
			return &fatalError{fmt.Errorf("dist: worker %d: %s", w.slot, e.Msg)}
		}
	}
	return &fatalError{fmt.Errorf("dist: worker %d sent %s frame, want %s", w.slot, frameName(f.typ), frameName(want))}
}

// await reads the next frame from w, bounded by the shard deadline.
func (p *Pool) await(w *workerProc, what string) (frameIn, error) {
	var deadline <-chan time.Time
	if p.cfg.ShardTimeout > 0 {
		t := time.NewTimer(p.cfg.ShardTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case f := <-w.frames:
		if f.err != nil {
			return frameIn{}, fmt.Errorf("worker %d died awaiting %s: %w", w.slot, what, f.err)
		}
		return f, nil
	case <-deadline:
		return frameIn{}, fmt.Errorf("worker %d exceeded %v awaiting %s (hung?)", w.slot, p.cfg.ShardTimeout, what)
	}
}

// startWorker launches a worker process into a slot and completes the
// hello handshake (so a version-mismatched or broken worker fails fast,
// before any shard depends on it).
func (p *Pool) startWorker(slot int) (*workerProc, error) {
	cmd := exec.Command(p.cfg.Command[0], p.cfg.Command[1:]...)
	cmd.Stderr = os.Stderr
	cmd.Env = append(os.Environ(), "PUFFER_DIST_WORKER=1")
	cmd.Env = append(cmd.Env, p.cfg.ExtraEnv...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d stdin: %w", slot, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: worker %d stdout: %w", slot, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: starting worker %d (%q): %w", slot, p.cfg.Command[0], err)
	}
	w := &workerProc{
		slot:   slot,
		cmd:    cmd,
		stdin:  stdin,
		bw:     bufio.NewWriterSize(stdin, 1<<16),
		frames: make(chan frameIn, 4),
	}
	go readFrames(stdout, w.frames)

	hello := func() error {
		if err := sendFrame(w.bw, frameHello, helloMsg{Version: ProtocolVersion, Worker: slot, Spec: p.cfg.Spec}); err != nil {
			return fmt.Errorf("dist: worker %d hello: %w", slot, err)
		}
		f, err := p.await(w, "hello-ok")
		if err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		if f.typ != frameHelloOK {
			return p.workerFrameError(w, f, frameHelloOK)
		}
		var ok helloOKMsg
		if err := decodePayload(f.typ, f.payload, &ok); err != nil {
			return err
		}
		if ok.Version != ProtocolVersion {
			return &fatalError{fmt.Errorf("dist: worker %d speaks protocol v%d, coordinator v%d", slot, ok.Version, ProtocolVersion)}
		}
		return nil
	}
	if err := hello(); err != nil {
		p.kill(w)
		return nil, err
	}
	workersStarted.Inc()
	p.setLive(+1)
	p.cfg.Events.Emit("dist_worker_start", map[string]any{"worker": slot, "pid": cmd.Process.Pid})
	p.logf("dist: worker %d up (pid %d)", slot, cmd.Process.Pid)
	return w, nil
}

// replace kills slot's worker and starts a fresh one in its place,
// re-sending hello and the current day context. Consumes one unit of the
// restart budget; exhaustion is a hard error.
func (p *Pool) replace(slot int, cause error) error {
	p.muR.Lock()
	p.restarts++
	over := p.restarts > p.cfg.MaxRestarts
	p.muR.Unlock()
	if over {
		return fmt.Errorf("dist: worker restart budget (%d) exhausted; last failure: %w", p.cfg.MaxRestarts, cause)
	}
	if old := p.slots[slot]; old != nil {
		p.kill(old)
		p.cfg.Events.Emit("dist_worker_exit", map[string]any{"worker": slot, "cause": cause.Error()})
		p.slots[slot] = nil
		p.setLive(-1)
	}
	w, err := p.startWorker(slot)
	if err != nil {
		return fmt.Errorf("dist: replacing worker %d: %w", slot, err)
	}
	workerRestarts.Inc()
	if err := sendFrame(w.bw, frameDay, dayMsg{Day: p.day, Model: p.model}); err != nil {
		p.kill(w)
		return fmt.Errorf("dist: replacing worker %d: re-broadcasting day %d: %w", slot, p.day, err)
	}
	p.slots[slot] = w
	return nil
}

// setLive adjusts the live worker count and mirrors it to the gauge.
func (p *Pool) setLive(delta int) {
	p.muR.Lock()
	p.live += delta
	v := p.live
	p.muR.Unlock()
	workersLive.Set(float64(v))
}

// kill terminates a worker process and reaps it.
func (p *Pool) kill(w *workerProc) {
	_ = w.stdin.Close()
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	_ = w.cmd.Wait()
}

// Close shuts the fleet down: a shutdown frame, then a bounded wait,
// then SIGKILL for stragglers. Idempotent.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for slot, w := range p.slots {
		if w == nil {
			continue
		}
		_ = sendFrame(w.bw, frameShutdown, nil)
		_ = w.stdin.Close()
		done := make(chan struct{})
		go func() { _ = w.cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			if w.cmd.Process != nil {
				_ = w.cmd.Process.Kill()
			}
			<-done
		}
		p.slots[slot] = nil
	}
	p.muR.Lock()
	p.live = 0
	p.muR.Unlock()
	workersLive.Set(0)
}

// readFrames pumps a worker's stdout frames into ch until read failure
// (including clean EOF at worker exit), which is sent as the final entry.
func readFrames(r io.Reader, ch chan<- frameIn) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			ch <- frameIn{err: fmt.Errorf("reading frame: %w", err)}
			return
		}
		ch <- frameIn{typ: typ, payload: payload}
	}
}

// shardOut is one completed shard's decoded results.
type shardOut struct {
	acc  *experiment.TrialAcc
	data *core.Dataset
}

// dayRun is the shared scheduling state for one day: a pending-shard
// queue, per-shard attempt counts, completed results, and abort plumbing.
type dayRun struct {
	mu        sync.Mutex
	pending   chan int // buffered to nShards; never blocks on requeue
	attempts  []int
	results   []*shardOut
	remaining int
	done      chan struct{}
	aborted   chan struct{}
	abortOnce sync.Once
	err       error
}

func newDayRun(nShards int) *dayRun {
	d := &dayRun{
		pending:   make(chan int, nShards),
		attempts:  make([]int, nShards),
		results:   make([]*shardOut, nShards),
		remaining: nShards,
		done:      make(chan struct{}),
		aborted:   make(chan struct{}),
	}
	for s := 0; s < nShards; s++ {
		d.pending <- s
	}
	return d
}

// take claims the next pending shard, or returns false when the day is
// complete or aborted.
func (d *dayRun) take() (int, bool) {
	select {
	case <-d.aborted:
		return 0, false
	default:
	}
	select {
	case s := <-d.pending:
		return s, true
	case <-d.done:
		return 0, false
	case <-d.aborted:
		return 0, false
	}
}

// attempt returns the current attempt index for a shard.
func (d *dayRun) attempt(s int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.attempts[s]
}

// requeue puts a failed shard back on the queue with a bumped attempt.
func (d *dayRun) requeue(s int) {
	d.mu.Lock()
	d.attempts[s]++
	d.mu.Unlock()
	d.pending <- s
}

// complete records a shard's result; the last one closes done.
func (d *dayRun) complete(s int, out *shardOut) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.results[s] != nil {
		return // duplicate (e.g. a late result after reassignment) — keep the first
	}
	d.results[s] = out
	d.remaining--
	if d.remaining == 0 {
		close(d.done)
	}
}

// abort ends the day with an error; the first abort wins.
func (d *dayRun) abort(err error) {
	d.abortOnce.Do(func() {
		d.err = err
		close(d.aborted)
	})
}

// Err returns the day's abort error, if any.
func (d *dayRun) Err() error {
	select {
	case <-d.aborted:
		return d.err
	default:
		return nil
	}
}
