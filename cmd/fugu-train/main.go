// Command fugu-train collects in-situ telemetry, trains a Transmission Time
// Predictor, and writes the model to disk — the offline half of Fugu's
// daily retraining loop.
//
//	fugu-train -sessions 300 -out ttp.model
//	fugu-train -env emulation -out ttp-emu.model   # the Fig. 11 baseline
//	fugu-train -warm ttp.model -out ttp2.model     # warm-started retrain
package main

import (
	"flag"
	"log"
	"math/rand"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fugu-train: ")
	sessions := flag.Int("sessions", 300, "telemetry-collection sessions")
	seed := flag.Int64("seed", 1, "seed")
	envName := flag.String("env", "insitu", "training environment: insitu or emulation")
	out := flag.String("out", "ttp.model", "output model path")
	warm := flag.String("warm", "", "warm-start from an existing model file")
	epochs := flag.Int("epochs", 10, "training epochs")
	day := flag.Int("day", 0, "day stamp for the collected telemetry")
	flag.Parse()

	var env experiment.Env
	switch *envName {
	case "insitu":
		env = experiment.DefaultEnv()
	case "emulation":
		env = experiment.EmulationEnv()
	default:
		log.Fatalf("unknown -env %q (want insitu or emulation)", *envName)
	}

	behavior := []experiment.Scheme{
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewBBA(), 0.15, *seed) }},
		{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewMPCHM(), 0.10, *seed+1) }},
	}
	log.Printf("collecting %d sessions of telemetry in %s...", *sessions, *envName)
	data, err := experiment.CollectDataset(env, behavior, *sessions, *seed, *day)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected %d chunks across %d streams", data.NumChunks(), len(data.Streams))

	var ttp *core.TTP
	if *warm != "" {
		ttp, err = core.LoadFile(*warm)
		if err != nil {
			log.Fatal(err)
		}
		ttp = ttp.Clone()
		log.Printf("warm-starting from %s", *warm)
	} else {
		ttp = core.NewTTP(rand.New(rand.NewSource(*seed+2)), core.DefaultHorizon, nil,
			core.DefaultFeatures(), core.KindTransTime)
	}

	cfg := core.DefaultTrainConfig()
	cfg.Seed = *seed + 3
	cfg.Epochs = *epochs
	res, err := core.Train(ttp, data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for step, loss := range res.Loss {
		log.Printf("step %d: %d examples, final loss %.3f nats", step, res.Examples[step], loss)
	}
	if err := ttp.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
