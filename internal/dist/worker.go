package dist

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"puffer/internal/core"
	"puffer/internal/experiment"
)

// DayTrial is one day's trial as the worker runs it: the fully-built
// experiment config (schemes, env, seed — everything a shard fold needs)
// plus the shard size that defines the shard grid.
type DayTrial struct {
	Trial     experiment.Config
	ShardSize int
}

// DayFunc builds day's trial from the already-compiled spec and the day's
// deployed model (nil on the bootstrap day). It must derive seeds and
// scheme sets exactly as the single-process engine does; the scenario
// layer provides the canonical implementation.
type DayFunc func(day int, model *core.TTP) (DayTrial, error)

// TrialFactory compiles the canonical spec bytes broadcast in the hello
// frame into a DayFunc. It lives behind a function type so this package
// never imports the scenario layer (which imports the runner, which
// imports this package).
type TrialFactory func(spec []byte) (DayFunc, error)

// Serve runs the worker side of the protocol over r/w (stdin/stdout of a
// subprocess worker) until the coordinator shuts it down or disappears.
// Any fatal worker-side failure is reported in an error frame before
// returning, so the coordinator logs the real cause instead of a bare
// exit status.
func Serve(r io.Reader, w io.Writer, factory TrialFactory) error {
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	fault, faultErr := ParseFault(os.Getenv(EnvFault))

	fail := func(err error) error {
		// Best effort: the coordinator may already be gone.
		_ = sendFrame(bw, frameError, errorMsg{Msg: err.Error()})
		return err
	}

	var (
		dayFn   DayFunc
		cur     DayTrial
		curDay  int
		haveDay bool
	)
	for {
		typ, payload, err := readFrame(br)
		if errors.Is(err, io.EOF) {
			return nil // coordinator exited; nothing left to do
		}
		if err != nil {
			return err
		}
		switch typ {
		case frameHello:
			var h helloMsg
			if err := decodePayload(typ, payload, &h); err != nil {
				return fail(err)
			}
			if h.Version != ProtocolVersion {
				return fail(fmt.Errorf("dist: protocol version mismatch: coordinator v%d, worker v%d", h.Version, ProtocolVersion))
			}
			if faultErr != nil {
				return fail(faultErr)
			}
			if dayFn, err = factory(h.Spec); err != nil {
				return fail(fmt.Errorf("dist: worker %d: compiling spec: %w", h.Worker, err))
			}
			if err := sendFrame(bw, frameHelloOK, helloOKMsg{Version: ProtocolVersion}); err != nil {
				return err
			}
			// First claim: ready for work as soon as a day arrives.
			if err := sendFrame(bw, frameClaim, nil); err != nil {
				return err
			}
		case frameDay:
			if dayFn == nil {
				return fail(fmt.Errorf("dist: day frame before hello"))
			}
			var d dayMsg
			if err := decodePayload(typ, payload, &d); err != nil {
				return fail(err)
			}
			var model *core.TTP
			if len(d.Model) > 0 {
				if model, err = core.Load(bytes.NewReader(d.Model)); err != nil {
					return fail(fmt.Errorf("dist: day %d model bytes: %w", d.Day, err))
				}
			}
			if cur, err = dayFn(d.Day, model); err != nil {
				return fail(fmt.Errorf("dist: building day %d trial: %w", d.Day, err))
			}
			curDay, haveDay = d.Day, true
		case frameAssign:
			var a assignMsg
			if err := decodePayload(typ, payload, &a); err != nil {
				return fail(err)
			}
			if !haveDay || a.Day != curDay {
				return fail(fmt.Errorf("dist: assigned day %d shard %d but current day is %d", a.Day, a.Shard, curDay))
			}
			blob, err := runShard(cur, a, fault)
			if err != nil {
				return fail(err)
			}
			if err := sendFrame(bw, frameResult, resultMsg{Day: a.Day, Shard: a.Shard, Attempt: a.Attempt, Blob: blob}); err != nil {
				return err
			}
			if err := sendFrame(bw, frameClaim, nil); err != nil {
				return err
			}
		case frameShutdown:
			return nil
		default:
			return fail(fmt.Errorf("dist: worker received unexpected %s frame", frameName(typ)))
		}
	}
}

// runShard folds one assigned shard into a fresh accumulator + dataset and
// packs them for the result frame. The shard is computed exactly as the
// single-process engine's shard unit (experiment.FoldShard with a private
// DatasetCollector), which is what makes the coordinator's shard-order
// merge byte-identical.
func runShard(cur DayTrial, a assignMsg, fault Fault) ([]byte, error) {
	lo, hi := experiment.ShardRange(cur.Trial.Sessions, cur.ShardSize, a.Shard)
	if lo >= hi {
		return nil, fmt.Errorf("dist: shard %d out of range for %d sessions (shard size %d)", a.Shard, cur.Trial.Sessions, cur.ShardSize)
	}
	if fault.Matches(FaultHang, a) {
		fmt.Fprintf(os.Stderr, "dist worker: %s=%s:day%d:shard%d — hanging\n", EnvFault, FaultHang, a.Day, a.Shard)
		select {} // hang until the coordinator's deadline kills us
	}
	if fault.Matches(FaultKill, a) {
		// Die mid-shard: run half the sessions (with their side effects),
		// then exit without reporting. The coordinator must reassign.
		trial := cur.Trial
		trial.Recorder = nil
		for id := lo; id < lo+(hi-lo+1)/2; id++ {
			trial.RunOne(id)
		}
		fmt.Fprintf(os.Stderr, "dist worker: %s=%s:day%d:shard%d — exiting mid-shard\n", EnvFault, FaultKill, a.Day, a.Shard)
		os.Exit(3)
	}
	col := experiment.NewDatasetCollector()
	trial := cur.Trial
	trial.Recorder = col
	acc := trial.FoldShard(lo, hi, experiment.AllPaths)
	return EncodeShard(acc, col.Dataset())
}
