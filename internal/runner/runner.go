package runner

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/dist"
	"puffer/internal/experiment"
	"puffer/internal/fleet"
	"puffer/internal/obs"
)

// Run-loop metrics (write-only; see the obs package contract). Wall-clock
// only — never virtual time — and never checkpointed: DayStats carries the
// deterministic record, these carry the operational one.
var (
	dayWallNS      = obs.Default.Histogram("runner_day_wall_ns")
	retrainWallNS  = obs.Default.Histogram("runner_retrain_wall_ns")
	daysTotal      = obs.Default.Counter("runner_days_total")
	sessionsPerSec = obs.Default.Gauge("runner_sessions_per_sec")
)

// runTraceID names the per-day runner trace (day / trial / retrain spans).
// Session id -1 keeps the id space disjoint from decision traces, whose
// session ids are non-negative.
func runTraceID(day int) uint64 { return obs.DecisionTraceID(-1, uint64(day)) }

// Config describes a continual experiment. Field comments state units and
// the zero-value default uniformly, because cmd/puffer-daily's help text is
// generated from the same facts.
type Config struct {
	// Env is the world sessions run in. When Env.Paths implements
	// netem.DaySampler (e.g. a netem.DriftingSampler), each day's sessions
	// draw their network situations from that day's distribution — the
	// nonstationary deployment the staleness ablation needs. Default
	// (zero Env): experiment.DefaultEnv.
	Env experiment.Env
	// Days is how many deployment days to simulate. No default; must be
	// positive.
	Days int
	// SessionsPerDay is each day's randomized-trial size in sessions. No
	// default; must be positive.
	SessionsPerDay int
	// WindowDays is the sliding retraining window W in days: the nightly
	// phase trains on telemetry from the last W days. Default (0): all
	// days so far.
	WindowDays int
	// Workers bounds shard parallelism (worker goroutines). Default (0):
	// GOMAXPROCS. Results are identical for any worker count.
	Workers int
	// Engine selects each day's execution engine: "" or "session" runs
	// the per-session sharded worker pool; "fleet" runs the virtual-time
	// fleet engine (interleaved sessions, cross-session batched
	// inference); "dist" runs each day's shards on a pool of worker
	// processes (requires DistCommand and SpecJSON). Results are
	// byte-identical across engines; only throughput and the
	// serving-side telemetry differ.
	Engine string
	// DistWorkers is the "dist" engine's worker-process count. Default
	// (0): GOMAXPROCS. Never changes results.
	DistWorkers int
	// DistCommand is the argv that launches one "dist" worker process
	// speaking the dist protocol on stdin/stdout — typically the CLI's
	// own binary in worker mode. Required when Engine is "dist".
	DistCommand []string
	// DistShardTimeout bounds one shard on one "dist" worker; past it
	// the worker is presumed hung, killed, and the shard reassigned.
	// Default (0): no deadline.
	DistShardTimeout time.Duration
	// ArrivalRate is the fleet engine's Poisson arrival intensity in
	// sessions per virtual second. Default (0): 1. Ignored by the
	// session engine; never changes results.
	ArrivalRate float64
	// Arrivals, when non-nil, replaces the Poisson process entirely
	// (e.g. fleet.BurstArrivals for flash crowds). Default (nil):
	// PoissonArrivals at ArrivalRate. Never changes results.
	Arrivals fleet.ArrivalProcess
	// FleetTick is the fleet engine's inference-batching tick in virtual
	// seconds. Default (0): 0.25. Ignored by the session engine; never
	// changes results.
	FleetTick float64
	// ShardSize is how many sessions each worker-pool shard covers.
	// Default (0): 64. Results are independent of ShardSize up to
	// floating-point reassociation of two scalar means; fix it for
	// bit-reproducibility.
	ShardSize int
	// Seed makes the whole run deterministic. Default (0) is a valid seed.
	Seed int64
	// Retrain enables the nightly warm-start retraining. Default (false):
	// the model trained after day 0 stays frozen — the paper's "Fugu-Feb"
	// staleness ablation.
	Retrain bool
	// CheckpointDir persists per-day state for kill-and-resume. Default
	// (empty): no checkpointing.
	CheckpointDir string
	// Hidden are the TTP hidden-layer sizes. Default (nil):
	// core.DefaultHidden (64, 64).
	Hidden []int
	// Horizon is the TTP/MPC lookahead in chunks. Default (0):
	// core.DefaultHorizon (5).
	Horizon int
	// Train controls the nightly supervised training. Default (zero
	// value): core.DefaultTrainConfig; Train.Seed is re-derived per day
	// either way.
	Train core.TrainConfig
	// SpecHash, when set, is the scenario guard hash
	// (scenario.Spec.GuardHash) that pins this run's checkpoint
	// manifest: resuming with a different hash is rejected. Default
	// (empty): the runner derives a fallback guard from its own
	// result-shaping fields, for callers constructing Configs directly.
	SpecHash string
	// SpecJSON is the canonical scenario spec recorded alongside
	// SpecHash in the manifest, so a rejected resume can say exactly
	// which experiment the checkpoint belongs to. Diagnostics only.
	SpecJSON []byte
	// Logf, if set, receives progress lines. Default (nil): silent.
	Logf func(format string, args ...any)
	// Events, if set, receives the structured run-progress stream
	// (day_start/day_done with wall time and ETA, retrain_done). Strictly
	// wall-side: nothing the runner computes reads an event back, and a
	// nil log (the default) costs nothing. Default (nil): no events.
	Events *obs.EventLog
}

// DayStats is one day's record: the trial aggregate plus the nightly phase.
type DayStats struct {
	Day       int
	Retrained bool
	// Chunks is the telemetry volume collected that day.
	Chunks int
	// Loss and Examples report the nightly training (nil if none ran).
	Loss     []float64
	Examples []int
	// Schemes is the day's per-arm analysis.
	Schemes []experiment.SchemeStats
	// Fleet is the serving-side record when the day ran on the fleet
	// engine (nil on the session engine). Every field is deterministic,
	// so checkpointed days replay byte-identically; wall-clock throughput
	// is logged, never stored.
	Fleet *FleetDayStats
}

// FleetDayStats summarizes one day of fleet-engine serving: occupancy of
// the virtual-time multiplexer and the inference service's cross-session
// batching counters.
type FleetDayStats struct {
	// PeakConcurrent and MeanConcurrent describe simultaneous live
	// sessions over the day's virtual timeline of HorizonSeconds.
	PeakConcurrent int
	MeanConcurrent float64
	HorizonSeconds float64
	// Decisions counts ABR decisions; Deferred counts those whose
	// inference went through the batched service.
	Decisions int64
	Deferred  int64
	// Flushes, Batches, Rows, MaxBatchRows, and MeanBatchRows describe
	// the service's batch shape (rows are ladder rungs per horizon step).
	Flushes       int
	Batches       int
	Rows          int64
	MaxBatchRows  int
	MeanBatchRows float64
}

// Scheme returns the day's stats row for a named arm — how the per-day
// staleness deltas are read out of paired retrained/frozen runs.
func (d *DayStats) Scheme(name string) (experiment.SchemeStats, bool) {
	for _, s := range d.Schemes {
		if s.Name == name {
			return s, true
		}
	}
	return experiment.SchemeStats{}, false
}

// GapRow is one day of a paired staleness comparison: the named arm's
// stall ratio under daily retraining and under the frozen day-0 model, on
// runs sharing a seed (so sessions and paths are identical and the gap
// isolates the models' decisions).
type GapRow struct {
	Day int
	// Retrained and Frozen are stall ratios (fractions, not percent).
	Retrained, Frozen float64
	// Gap is Frozen - Retrained.
	Gap float64
	// Present is false on days the arm did not run (e.g. the bootstrap
	// day, which deploys no Fugu).
	Present bool
}

// StalenessGaps aligns two seed-paired runs day by day for the named arm.
// Both the puffer-daily ablation table and figures.FigDrift are built on
// it.
func StalenessGaps(retrained, frozen *Result, scheme string) []GapRow {
	days := len(retrained.Days)
	if len(frozen.Days) < days {
		days = len(frozen.Days)
	}
	rows := make([]GapRow, 0, days)
	for d := 0; d < days; d++ {
		row := GapRow{Day: d}
		a, okA := retrained.Days[d].Scheme(scheme)
		b, okB := frozen.Days[d].Scheme(scheme)
		if okA && okB {
			row.Present = true
			row.Retrained = a.StallRatio.Point
			row.Frozen = b.StallRatio.Point
			row.Gap = b.StallRatio.Point - a.StallRatio.Point
		}
		rows = append(rows, row)
	}
	return rows
}

// Result is a finished (or resumed-and-finished) continual experiment.
type Result struct {
	Days []DayStats
	// Total pools every day's streams per scheme: the merged accumulators
	// analyzed once.
	Total []experiment.SchemeStats
	// TTP is the model after the final nightly phase.
	TTP *core.TTP
	// Data is the sliding-window telemetry at exit (the last WindowDays
	// days merged in day order) — what the next nightly phase would train
	// on, and what the figures suite evaluates predictors against.
	Data *core.Dataset
}

// ModelSlot atomically publishes the TTP the Fugu arm serves. The nightly
// phase stores the retrained model; session factories load it at session
// creation, so a rotation never tears an in-flight stream.
type ModelSlot struct {
	p atomic.Pointer[core.TTP]
}

// Load returns the current model (nil before the first nightly phase).
func (s *ModelSlot) Load() *core.TTP { return s.p.Load() }

// Store rotates a new model in.
func (s *ModelSlot) Store(t *core.TTP) { s.p.Store(t) }

// BootstrapSchemes is the day-0 data-collection mixture: the classical
// schemes Puffer ran from day one, with light exploration for off-policy
// coverage of the (state, chunk size) space.
func BootstrapSchemes(seed int64) []experiment.Scheme {
	return []experiment.Scheme{
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewBBA(), 0.15, seed) }},
		{Name: "MPC-HM", New: func() abr.Algorithm { return abr.NewExplorer(abr.NewMPCHM(), 0.10, seed+1) }},
		{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
	}
}

// DeploySchemes is the steady-state mixture once a model exists: Fugu (with
// a little exploration, so retraining keeps seeing outcomes for sizes the
// policy would not pick) alongside BBA.
func DeploySchemes(slot *ModelSlot, seed int64) []experiment.Scheme {
	return []experiment.Scheme{
		{Name: "Fugu", New: func() abr.Algorithm { return abr.NewExplorer(core.NewFugu(slot.Load()), 0.05, seed+2) }},
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
	}
}

// dayData is one day of the sliding window.
type dayData struct {
	day  int
	data *core.Dataset
}

// state is one run in progress.
type state struct {
	cfg    Config
	slot   ModelSlot
	pool   *dist.Pool // worker-process pool; only set for Engine "dist"
	window []dayData
	pooled *experiment.TrialAcc
	res    *Result
}

// Run executes (or resumes) the continual experiment.
func Run(cfg Config) (*Result, error) {
	gobTypeWarmup()
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("runner: Days = %d, must be positive", cfg.Days)
	}
	if cfg.SessionsPerDay <= 0 {
		return nil, fmt.Errorf("runner: SessionsPerDay = %d, must be positive", cfg.SessionsPerDay)
	}
	if cfg.Env.Paths == nil {
		cfg.Env = experiment.DefaultEnv()
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 64
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = core.DefaultHorizon
	}
	if (cfg.Train == core.TrainConfig{}) {
		cfg.Train = core.DefaultTrainConfig()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	switch cfg.Engine {
	case "", "session", "fleet", "dist":
	default:
		return nil, fmt.Errorf("runner: unknown Engine %q (want session, fleet, or dist)", cfg.Engine)
	}

	r := &state{
		cfg:    cfg,
		pooled: experiment.NewTrialAcc(experiment.AllPaths),
		res:    &Result{},
	}
	if cfg.Engine == "dist" {
		if len(cfg.DistCommand) == 0 {
			return nil, fmt.Errorf("runner: Engine \"dist\" needs DistCommand (a worker argv)")
		}
		if len(cfg.SpecJSON) == 0 {
			return nil, fmt.Errorf("runner: Engine \"dist\" needs SpecJSON (the canonical spec workers compile their trials from)")
		}
		pool, err := dist.NewPool(dist.PoolConfig{
			Workers:      cfg.DistWorkers,
			Command:      cfg.DistCommand,
			Spec:         cfg.SpecJSON,
			ShardTimeout: cfg.DistShardTimeout,
			Logf:         cfg.Logf,
			Events:       cfg.Events,
		})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		r.pool = pool
	}
	start := 0
	if cfg.CheckpointDir != "" {
		var err error
		start, err = r.resume()
		if err != nil {
			return nil, err
		}
		if start > 0 {
			cfg.Logf("resumed at day %d (%d days checkpointed)", start, start)
		}
	}

	var wallSumNS int64
	for day := start; day < cfg.Days; day++ {
		cfg.Events.Emit("day_start", map[string]any{
			"day": day, "sessions": cfg.SessionsPerDay, "days_total": cfg.Days,
		})
		t0 := obs.Now()
		ds, acc, data, err := r.liveDay(day)
		if err != nil {
			return nil, err
		}
		if cfg.CheckpointDir != "" {
			if err := r.checkpointDay(ds, acc, data); err != nil {
				return nil, err
			}
		}
		r.finishDay(ds, acc, data)
		wall := obs.SinceNS(t0)
		dayWallNS.Observe(wall)
		daysTotal.Inc()
		if tr := obs.Tracing(); tr != nil {
			tr.Record(obs.Span{Trace: runTraceID(day), ID: tr.NewSpanID(),
				Name: "day", Start: t0, Dur: wall, Attrs: []obs.Attr{
					{Key: "day", Val: int64(day)},
					{Key: "sessions", Val: int64(cfg.SessionsPerDay)},
					{Key: "chunks", Val: int64(ds.Chunks)},
				}})
		}
		done := day - start + 1
		fields := map[string]any{
			"day": day, "chunks": ds.Chunks, "days_done": day + 1, "days_total": cfg.Days,
		}
		if wall > 0 {
			wallSumNS += wall
			fields["wall_s"] = float64(wall) / 1e9
			fields["eta_s"] = float64(wallSumNS) / float64(done) * float64(cfg.Days-day-1) / 1e9
			sessionsPerSec.Set(float64(cfg.SessionsPerDay) / (float64(wall) / 1e9))
		}
		cfg.Events.Emit("day_done", fields)
	}

	r.res.Total = r.pooled.Analyze(totalAnalysisSeed(cfg.Seed))
	r.res.TTP = r.slot.Load()
	r.res.Data = mergeWindow(r.window)
	return r.res, nil
}

// DayTrial builds day `day`'s randomized trial exactly as the daily loop
// runs it: the day's scheme mixture (bootstrap until the slot holds a
// model, deployment after) over the config's world, with the day-derived
// seed. The Recorder is left nil for the engine to attach. Exported so
// external execution engines — the wall-clock serving layer, the dist
// worker — reproduce the coordinator's trial byte for byte.
func (cfg *Config) DayTrial(day int, slot *ModelSlot) experiment.Config {
	env := cfg.Env
	if env.Paths == nil {
		env = experiment.DefaultEnv()
	}
	schemes := DeploySchemes(slot, daySeed(cfg.Seed, day))
	if slot.Load() == nil {
		schemes = BootstrapSchemes(daySeed(cfg.Seed, day))
	}
	return experiment.Config{
		Env:      env,
		Schemes:  schemes,
		Sessions: cfg.SessionsPerDay,
		Seed:     daySeed(cfg.Seed, day),
		Day:      day,
	}
}

// liveDay simulates day `day` and runs its nightly phase.
func (r *state) liveDay(day int) (DayStats, *experiment.TrialAcc, *core.Dataset, error) {
	cfg := r.cfg
	var (
		acc  *experiment.TrialAcc
		data *core.Dataset
		fst  *fleet.Stats
		err  error
	)
	tTrial := obs.Now()
	switch cfg.Engine {
	case "dist":
		// Workers build the same DayTrial from the broadcast (spec, day,
		// model); the pool merges their shard blobs in shard order.
		acc, data, err = r.pool.RunDay(day, r.slot.Load(), cfg.SessionsPerDay, cfg.ShardSize)
	case "fleet":
		col := experiment.NewDatasetCollector()
		trial := cfg.DayTrial(day, &r.slot)
		trial.Recorder = col
		proc := cfg.Arrivals
		if proc == nil {
			rate := cfg.ArrivalRate
			if rate <= 0 {
				rate = 1
			}
			proc = fleet.PoissonArrivals{Rate: rate}
		}
		acc, fst, err = fleet.RunTrial(&trial, fleet.Config{
			ShardSize: cfg.ShardSize,
			Workers:   cfg.Workers,
			Tick:      cfg.FleetTick,
			Arrivals:  proc,
		})
		if err == nil {
			data = col.Dataset()
		}
	default:
		col := experiment.NewDatasetCollector()
		trial := cfg.DayTrial(day, &r.slot)
		trial.Recorder = col
		acc, err = runDaySharded(&trial, cfg.ShardSize, cfg.Workers)
		if err == nil {
			data = col.Dataset()
		}
	}
	if err != nil {
		return DayStats{}, nil, nil, err
	}
	if tr := obs.Tracing(); tr != nil {
		tr.Record(obs.Span{Trace: runTraceID(day), ID: tr.NewSpanID(),
			Name: "trial", Start: tTrial, Dur: obs.SinceNS(tTrial),
			Attrs: []obs.Attr{{Key: "day", Val: int64(day)}}})
	}
	ds := DayStats{
		Day:     day,
		Chunks:  data.NumChunks(),
		Schemes: acc.Analyze(dayAnalysisSeed(cfg.Seed, day)),
	}
	cfg.Logf("day %d: %d sessions, %d chunks of telemetry", day, cfg.SessionsPerDay, ds.Chunks)
	if fst != nil {
		ds.Fleet = &FleetDayStats{
			PeakConcurrent: fst.PeakConcurrent,
			MeanConcurrent: fst.MeanConcurrent,
			HorizonSeconds: fst.HorizonSeconds,
			Decisions:      fst.Decisions,
			Deferred:       fst.Deferred,
			Flushes:        fst.Flushes,
			Batches:        fst.Batches,
			Rows:           fst.Rows,
			MaxBatchRows:   fst.MaxBatchRows,
			MeanBatchRows:  fst.MeanBatchRows,
		}
		cfg.Logf("  fleet: peak %d concurrent (mean %.1f) over %.0fs virtual, %d flushes, mean batch %.0f rows, %.0f sessions/sec wall",
			fst.PeakConcurrent, fst.MeanConcurrent, fst.HorizonSeconds,
			fst.Flushes, fst.MeanBatchRows, fst.SessionsPerSec())
		// Log-only registry read (a permitted wall-side consumer): the
		// cumulative decision-latency quantiles across fleet days so far.
		if obs.Enabled() {
			if snap := obs.Default.Histogram(fleet.MetricDecisionNS).Snapshot(); snap.Count > 0 {
				cfg.Logf("  obs: decision latency p50 %v p99 %v p999 %v over %d decisions (cumulative)",
					time.Duration(snap.Quantile(0.5)), time.Duration(snap.Quantile(0.99)),
					time.Duration(snap.Quantile(0.999)), snap.Count)
			}
		}
	}

	// Nightly phase: bootstrap-train on day 0, warm-start-retrain when
	// continual retraining is on; the frozen ablation keeps serving the
	// day-0 model.
	if r.slot.Load() == nil || cfg.Retrain {
		t0 := obs.Now()
		tr, model, err := r.nightlyTrain(day, data)
		if err != nil {
			return DayStats{}, nil, nil, err
		}
		retrainWallNS.ObserveSince(t0)
		if trc := obs.Tracing(); trc != nil {
			trc.Record(obs.Span{Trace: runTraceID(day), ID: trc.NewSpanID(),
				Name: "retrain", Start: t0, Dur: obs.SinceNS(t0),
				Attrs: []obs.Attr{
					{Key: "day", Val: int64(day)},
					{Key: "examples", Val: int64(tr.Examples[0])},
				}})
		}
		ds.Retrained = true
		ds.Loss, ds.Examples = tr.Loss, tr.Examples
		r.slot.Store(model)
		cfg.Logf("  nightly retrain: %d examples (step 0), final loss %.3f nats", tr.Examples[0], tr.Loss[0])
		cfg.Events.Emit("retrain_done", map[string]any{
			"day": day, "examples": tr.Examples[0], "loss": tr.Loss[0],
		})
	}
	return ds, acc, data, nil
}

// finishDay folds a completed day into the run's rolling state.
func (r *state) finishDay(ds DayStats, acc *experiment.TrialAcc, data *core.Dataset) {
	r.res.Days = append(r.res.Days, ds)
	r.pooled.Merge(acc)
	r.window = trimWindow(append(r.window, dayData{day: ds.Day, data: data}), ds.Day, r.cfg.WindowDays)
}

// trimWindow drops telemetry older than the sliding window of `windowDays`
// ending at `day` (0 = keep everything).
func trimWindow(win []dayData, day, windowDays int) []dayData {
	if windowDays <= 0 {
		return win
	}
	keepFrom := day - windowDays + 1
	for len(win) > 0 && win[0].day < keepFrom {
		win = win[1:]
	}
	return win
}

// mergeWindow merges a window in day order. The merged dataset is what the
// nightly phase trains on; day stamps survive so the training config's
// recency weighting sees true ages.
func mergeWindow(win []dayData) *core.Dataset {
	d := &core.Dataset{}
	for _, w := range win {
		d.Streams = append(d.Streams, w.data.Streams...)
	}
	return d
}

// nightlyTrain trains the next day's model on the sliding window including
// today: warm-started from the current model, or cold on day 0. The rolling
// window itself is updated later (finishDay, after checkpointing), so
// today's telemetry joins a local copy here.
func (r *state) nightlyTrain(day int, today *core.Dataset) (core.TrainResult, *core.TTP, error) {
	win := append(append([]dayData{}, r.window...), dayData{day: day, data: today})
	data := mergeWindow(trimWindow(win, day, r.cfg.WindowDays))

	var model *core.TTP
	if cur := r.slot.Load(); cur != nil {
		model = cur.Clone()
	} else {
		rng := rand.New(rand.NewSource(mix2(r.cfg.Seed, -1)))
		model = core.NewTTP(rng, r.cfg.Horizon, r.cfg.Hidden, core.DefaultFeatures(), core.KindTransTime)
	}
	tc := r.cfg.Train
	tc.Seed = trainSeed(r.cfg.Seed, day)
	tr, err := core.Train(model, data, tc)
	if err != nil {
		return tr, nil, fmt.Errorf("runner: nightly training after day %d: %w", day, err)
	}
	return tr, model, nil
}

// runDaySharded shards the day's sessions across a worker pool. Each shard
// folds its sessions into a private TrialAcc — one live SessionResult per
// worker, never a materialized day — and shards merge in shard order so the
// aggregate is independent of scheduling. Shard boundaries and fold order
// come from experiment.ShardRange/FoldShard, the canonical aggregation the
// fleet engine replicates for byte-identical pooled stats.
func runDaySharded(trial *experiment.Config, shardSize, workers int) (*experiment.TrialAcc, error) {
	if len(trial.Schemes) == 0 {
		return nil, fmt.Errorf("runner: no schemes configured")
	}
	nShards := experiment.NumShards(trial.Sessions, shardSize)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nShards {
		workers = nShards
	}
	accs := make([]*experiment.TrialAcc, nShards)
	shards := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range shards {
				lo, hi := experiment.ShardRange(trial.Sessions, shardSize, s)
				accs[s] = trial.FoldShard(lo, hi, experiment.AllPaths)
			}
		}()
	}
	for s := 0; s < nShards; s++ {
		shards <- s
	}
	close(shards)
	wg.Wait()

	total := experiment.NewTrialAcc(experiment.AllPaths)
	for _, acc := range accs {
		total.Merge(acc)
	}
	return total, nil
}

// Seed derivations: every per-day RNG gets independent seed material via the
// splitmix64 finalizer, mirroring the experiment package's mix.
func mix2(seed, id int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

func daySeed(seed int64, day int) int64         { return mix2(seed, int64(3*day+1)) }
func trainSeed(seed int64, day int) int64       { return mix2(seed, int64(3*day+2)) }
func dayAnalysisSeed(seed int64, day int) int64 { return mix2(seed, int64(3*day+3)) }
func totalAnalysisSeed(seed int64) int64        { return mix2(seed, -2) }

// DaySeed is the trial seed of day `day` of a run with this config seed —
// exported so an external execution engine (the wall-clock serving layer)
// can reproduce exactly the randomized trial the daily loop would run.
func DaySeed(seed int64, day int) int64 { return daySeed(seed, day) }

// DayAnalysisSeed is the bootstrap seed of day `day`'s per-arm analysis,
// exported for the same reason as DaySeed: analyzing an externally-executed
// trial with this seed reproduces the daily loop's stats byte for byte.
func DayAnalysisSeed(seed int64, day int) int64 { return dayAnalysisSeed(seed, day) }
