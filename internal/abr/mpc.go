package abr

import (
	"math"

	"puffer/internal/media"
)

// Predictor supplies the MPC engine with a probability distribution over the
// transmission time of a proposed chunk. Deterministic predictors (harmonic
// mean) return a one-hot distribution; the TTP returns its full softmax.
type Predictor interface {
	// PredictDist fills dist (length NumBins) with the probability that
	// sending a chunk of the given size, `step` positions ahead of the
	// current decision (step 0 = the chunk being decided), lands in each
	// transmission-time bin.
	PredictDist(obs *Observation, step int, size float64, dist []float64)
}

// MPC is the paper's §4.4 controller: a stochastic model-predictive
// controller maximizing expected cumulative QoE (Equation 1) over a lookahead
// horizon by value iteration over a discretized buffer, shared verbatim by
// MPC-HM, RobustMPC-HM, and Fugu (only the Predictor differs).
type MPC struct {
	AlgName string
	Pred    Predictor
	Weights QoEWeights
	Horizon int     // lookahead chunks (paper: 5)
	BufStep float64 // buffer discretization (seconds per bin)

	// scratch, reused across decisions
	value   []float64
	visited []bool
	dists   []float64 // predicted distributions, indexed (step*nQ+q)*NumBins
	nBuf    int
	bufCap  float64
}

// NewMPC builds the controller with the paper's defaults: horizon 5,
// 0.25-second buffer bins.
func NewMPC(name string, pred Predictor, w QoEWeights) *MPC {
	return &MPC{AlgName: name, Pred: pred, Weights: w, Horizon: 5, BufStep: 0.25}
}

// Name implements Algorithm.
func (m *MPC) Name() string { return m.AlgName }

// Reset implements Algorithm.
func (m *MPC) Reset() {
	if r, ok := m.Pred.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// Choose implements Algorithm: it plans a trajectory over the horizon and
// returns the first step's rung.
func (m *MPC) Choose(obs *Observation) int {
	h := m.Horizon
	if h > len(obs.Horizon) {
		h = len(obs.Horizon)
	}
	if h == 0 {
		return 0
	}
	nQ := len(obs.Horizon[0].Versions)
	m.ensureScratch(obs.BufferCap, h, nQ)

	// Predictions depend only on (step, proposed size), not on the DP
	// state: compute each of the h*nQ distributions exactly once.
	for step := 0; step < h; step++ {
		for q := 0; q < nQ; q++ {
			m.Pred.PredictDist(obs, step, obs.Horizon[step].Versions[q].Size, m.distFor(step, q, nQ))
		}
	}

	// Root step: previous chunk is the actually-sent one (or absent).
	bestQ, bestV := 0, math.Inf(-1)
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[0].Versions[q]
		v := 0.0
		for k, p := range m.distFor(0, q, nQ) {
			if p == 0 {
				continue
			}
			tt := BinValue(k)
			stall := math.Max(tt-obs.Buffer, 0)
			qoe := m.Weights.Chunk(enc.SSIMdB, obs.LastSSIM, stall, obs.LastQuality >= 0)
			next := m.nextBuffer(obs.Buffer, tt)
			v += p * (qoe + m.valueAt(obs, 1, h, nQ, next, q))
		}
		if v > bestV {
			bestV, bestQ = v, q
		}
	}
	return bestQ
}

// distFor returns the cached distribution slice for (step, quality).
func (m *MPC) distFor(step, q, nQ int) []float64 {
	at := (step*nQ + q) * NumBins
	return m.dists[at : at+NumBins]
}

// ensureScratch sizes the memo tables for this decision's dimensions.
func (m *MPC) ensureScratch(bufCap float64, h, nQ int) {
	if bufCap <= 0 {
		bufCap = 15
	}
	m.bufCap = bufCap
	m.nBuf = int(bufCap/m.BufStep) + 1
	need := h * m.nBuf * nQ
	if cap(m.value) < need {
		m.value = make([]float64, need)
		m.visited = make([]bool, need)
	}
	m.value = m.value[:need]
	m.visited = m.visited[:need]
	for i := range m.visited {
		m.visited[i] = false
	}
	if distNeed := h * nQ * NumBins; cap(m.dists) < distNeed {
		m.dists = make([]float64, distNeed)
	} else {
		m.dists = m.dists[:distNeed]
	}
}

// nextBuffer applies the buffer dynamics: drain during the transfer, then
// gain one chunk of playable video, capped at the client's maximum.
func (m *MPC) nextBuffer(buf, transTime float64) float64 {
	b := math.Max(buf-transTime, 0) + media.ChunkDuration
	if b > m.bufCap {
		b = m.bufCap
	}
	return b
}

func (m *MPC) bufBin(buf float64) int {
	i := int(buf/m.BufStep + 0.5)
	if i >= m.nBuf {
		i = m.nBuf - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// valueAt is the memoized value function v*(step, buffer, prevQuality):
// the best expected QoE obtainable from horizon step `step` onward, given
// the buffer level and that the chunk at step-1 was sent at prevQ.
// Only states reachable from the root are ever computed (the paper's
// "forward recursion with memoization").
func (m *MPC) valueAt(obs *Observation, step, h, nQ int, buf float64, prevQ int) float64 {
	if step >= h {
		return 0
	}
	bb := m.bufBin(buf)
	idx := (step*m.nBuf+bb)*nQ + prevQ
	if m.visited[idx] {
		return m.value[idx]
	}
	bufQ := float64(bb) * m.BufStep // quantized buffer for child states
	prevSSIM := obs.Horizon[step-1].Versions[prevQ].SSIMdB

	best := math.Inf(-1)
	for q := 0; q < nQ; q++ {
		enc := obs.Horizon[step].Versions[q]
		v := 0.0
		for k, p := range m.distFor(step, q, nQ) {
			if p == 0 {
				continue
			}
			tt := BinValue(k)
			stall := math.Max(tt-bufQ, 0)
			qoe := m.Weights.Chunk(enc.SSIMdB, prevSSIM, stall, true)
			next := m.nextBuffer(bufQ, tt)
			v += p * (qoe + m.valueAt(obs, step+1, h, nQ, next, q))
		}
		if v > best {
			best = v
		}
	}
	m.visited[idx] = true
	m.value[idx] = best
	return best
}

// HarmonicMeanPredictor is the paper's "HM" predictor: future throughput is
// the harmonic mean of the last five throughput samples, giving a
// deterministic (one-hot) transmission-time distribution of size/throughput.
// With Robust set it divides the estimate by (1+maxErr), where maxErr is the
// largest relative error the HM predictor has made on this stream (decayed
// slowly), the RobustMPC lower-bound rule: one bad surprise keeps the
// controller humble for a while.
type HarmonicMeanPredictor struct {
	Robust bool
	// Window is the number of samples (paper: 5). Zero means 5.
	Window int
	// ErrDecay multiplies the remembered max error per chunk (default
	// 0.995); only used with Robust.
	ErrDecay float64

	maxErr   float64
	lastSeen int
}

// Reset clears the per-stream error memory (called by the MPC on new
// streams).
func (p *HarmonicMeanPredictor) Reset() {
	p.maxErr = 0
	p.lastSeen = 0
}

// coldStartTput is the throughput assumed before any samples exist
// (bits/s). A conservative default must still scale with chunk size — a
// fixed "worst case" time would charge every rung the same stall and push
// the controller to the top rung on the very first chunk.
const coldStartTput = 1e6

// PredictDist implements Predictor.
func (p *HarmonicMeanPredictor) PredictDist(obs *Observation, step int, size float64, dist []float64) {
	tput := p.estimate(obs)
	for i := range dist {
		dist[i] = 0
	}
	if tput <= 0 {
		tput = coldStartTput
	}
	tt := size * 8 / tput
	dist[BinIndex(tt)] = 1
}

// estimate returns the (possibly robust-discounted) throughput estimate in
// bits/s, or 0 if no history exists.
func (p *HarmonicMeanPredictor) estimate(obs *Observation) float64 {
	w := p.Window
	if w == 0 {
		w = 5
	}
	hm := harmonicMeanTail(obs.History, len(obs.History), w)
	if hm <= 0 {
		return 0
	}
	if !p.Robust {
		return hm
	}
	decay := p.ErrDecay
	if decay == 0 {
		decay = 0.995
	}
	// Fold the newest completed chunk into the error memory: the HM
	// prediction it would have received is the harmonic mean of the
	// samples preceding it.
	if n := len(obs.History); n > 0 && obs.ChunkIndex > p.lastSeen {
		p.maxErr *= decay
		pred := harmonicMeanTail(obs.History, n-1, w)
		actual := obs.History[n-1].Throughput()
		if pred > 0 && actual > 0 {
			if err := math.Abs(pred-actual) / actual; err > p.maxErr {
				p.maxErr = err
			}
		}
		p.lastSeen = obs.ChunkIndex
	}
	return hm / (1 + p.maxErr)
}

// harmonicMeanTail computes the harmonic mean of the up-to-w throughput
// samples ending just before index end (exclusive).
func harmonicMeanTail(hist []ChunkRecord, end, w int) float64 {
	start := end - w
	if start < 0 {
		start = 0
	}
	n := 0
	sumInv := 0.0
	for _, r := range hist[start:end] {
		tp := r.Throughput()
		if tp <= 0 {
			continue
		}
		sumInv += 1 / tp
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sumInv
}

// NewMPCHM returns the paper's MPC-HM scheme.
func NewMPCHM() *MPC {
	return NewMPC("MPC-HM", &HarmonicMeanPredictor{}, DefaultQoEWeights())
}

// NewRobustMPCHM returns the paper's RobustMPC-HM scheme.
func NewRobustMPCHM() *MPC {
	return NewMPC("RobustMPC-HM", &HarmonicMeanPredictor{Robust: true}, DefaultQoEWeights())
}
