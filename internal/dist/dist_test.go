package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"puffer/internal/abr"
	"puffer/internal/core"
	"puffer/internal/experiment"
	"puffer/internal/obs"
)

// The pool tests exercise the real thing: worker processes launched by
// re-execing this test binary. TestMain dispatches the worker modes (set
// via PUFFER_DIST_TEST_MODE in ExtraEnv) before the test framework
// touches flags.
func TestMain(m *testing.M) {
	switch os.Getenv("PUFFER_DIST_TEST_MODE") {
	case "":
		os.Exit(m.Run())
	case "worker":
		if err := Serve(os.Stdin, os.Stdout, testFactory); err != nil {
			fmt.Fprintln(os.Stderr, "test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	case "crash-assign":
		crashAssignWorker()
	case "old-version":
		oldVersionWorker()
	default:
		fmt.Fprintln(os.Stderr, "unknown PUFFER_DIST_TEST_MODE")
		os.Exit(2)
	}
}

// testSpec plays the canonical-spec role for these tests: everything the
// worker needs to rebuild the coordinator's trial.
type testSpec struct {
	Sessions  int
	ShardSize int
	BaseSeed  int64
}

// testTrial is the shared trial builder — the coordinator-side reference
// and the worker factory both use it, mirroring how production shares
// runner.Config.DayTrial.
func testTrial(sp testSpec, day int, model *core.TTP) experiment.Config {
	schemes := []experiment.Scheme{
		{Name: "BBA", New: func() abr.Algorithm { return abr.NewBBA() }},
		{Name: "RobustMPC-HM", New: func() abr.Algorithm { return abr.NewRobustMPCHM() }},
	}
	if model != nil {
		schemes[1] = experiment.Scheme{Name: "Fugu", New: func() abr.Algorithm { return core.NewFugu(model) }}
	}
	return experiment.Config{
		Env:      experiment.DefaultEnv(),
		Schemes:  schemes,
		Sessions: sp.Sessions,
		Seed:     sp.BaseSeed + int64(day),
		Day:      day,
	}
}

func testFactory(spec []byte) (DayFunc, error) {
	var sp testSpec
	if err := json.Unmarshal(spec, &sp); err != nil {
		return nil, err
	}
	return func(day int, model *core.TTP) (DayTrial, error) {
		return DayTrial{Trial: testTrial(sp, day, model), ShardSize: sp.ShardSize}, nil
	}, nil
}

// crashAssignWorker handshakes fine, then dies on every assignment — a
// crash-looping fleet that must exhaust the pool's restart budget instead
// of spinning forever.
func crashAssignWorker() {
	br := bufio.NewReader(os.Stdin)
	bw := bufio.NewWriter(os.Stdout)
	for {
		typ, _, err := readFrame(br)
		if err != nil {
			os.Exit(0)
		}
		switch typ {
		case frameHello:
			_ = sendFrame(bw, frameHelloOK, helloOKMsg{Version: ProtocolVersion})
			_ = sendFrame(bw, frameClaim, nil)
		case frameAssign:
			os.Exit(4)
		case frameShutdown:
			os.Exit(0)
		}
	}
}

// oldVersionWorker acks the hello with a wrong protocol version.
func oldVersionWorker() {
	br := bufio.NewReader(os.Stdin)
	bw := bufio.NewWriter(os.Stdout)
	if _, _, err := readFrame(br); err != nil {
		os.Exit(0)
	}
	_ = sendFrame(bw, frameHelloOK, helloOKMsg{Version: ProtocolVersion + 7})
	for {
		if _, _, err := readFrame(br); err != nil {
			os.Exit(0)
		}
	}
}

// testPool builds a pool whose workers are this test binary in the given
// mode.
func testPool(t *testing.T, sp testSpec, mode string, extraEnv []string, workers, maxRestarts int, timeout time.Duration) *Pool {
	t.Helper()
	spec, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(PoolConfig{
		Workers:      workers,
		Command:      []string{os.Args[0]},
		Spec:         spec,
		ShardTimeout: timeout,
		MaxRestarts:  maxRestarts,
		ExtraEnv:     append([]string{"PUFFER_DIST_TEST_MODE=" + mode}, extraEnv...),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// foldReference computes the single-process canonical aggregate (shard
// folds merged in shard order, one global dataset collector) the pool must
// reproduce byte for byte.
func foldReference(sp testSpec, day int, model *core.TTP) (*experiment.TrialAcc, *core.Dataset) {
	trial := testTrial(sp, day, model)
	col := experiment.NewDatasetCollector()
	trial.Recorder = col
	acc := experiment.NewTrialAcc(experiment.AllPaths)
	for s := 0; s < experiment.NumShards(sp.Sessions, sp.ShardSize); s++ {
		lo, hi := experiment.ShardRange(sp.Sessions, sp.ShardSize, s)
		acc.Merge(trial.FoldShard(lo, hi, experiment.AllPaths))
	}
	return acc, col.Dataset()
}

func accBytes(t *testing.T, acc *experiment.TrialAcc) []byte {
	t.Helper()
	b, err := acc.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func dataBytes(t *testing.T, d *core.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireDayIdentical runs one day on the pool and byte-compares the
// merged accumulator and dataset against the single-process reference.
func requireDayIdentical(t *testing.T, p *Pool, sp testSpec, day int, model *core.TTP) {
	t.Helper()
	acc, data, err := p.RunDay(day, model, sp.Sessions, sp.ShardSize)
	if err != nil {
		t.Fatalf("RunDay(%d): %v", day, err)
	}
	wantAcc, wantData := foldReference(sp, day, model)
	if !bytes.Equal(accBytes(t, acc), accBytes(t, wantAcc)) {
		t.Errorf("day %d: merged accumulator differs from single-process reference", day)
	}
	if !bytes.Equal(dataBytes(t, data), dataBytes(t, wantData)) {
		t.Errorf("day %d: merged dataset differs from single-process reference", day)
	}
}

func testModel() *core.TTP {
	rng := rand.New(rand.NewSource(99))
	return core.NewTTP(rng, 2, []int{4}, core.DefaultFeatures(), core.KindTransTime)
}

// TestPoolMatchesSingleProcess is the core identity contract across two
// days: a bootstrap day (no model broadcast) and a deploy day whose model
// bytes ride the day frame — both byte-identical to the single-process
// shard fold, with workers persisting across the day boundary.
func TestPoolMatchesSingleProcess(t *testing.T) {
	sp := testSpec{Sessions: 40, ShardSize: 8, BaseSeed: 5}
	p := testPool(t, sp, "worker", nil, 3, 0, 30*time.Second)
	requireDayIdentical(t, p, sp, 0, nil)
	requireDayIdentical(t, p, sp, 1, testModel())
}

// TestKillFaultReassigned proves the robustness half of the contract: a
// worker killed mid-shard gets the shard reassigned, and the final merge
// is still byte-identical.
func TestKillFaultReassigned(t *testing.T) {
	sp := testSpec{Sessions: 40, ShardSize: 8, BaseSeed: 7}
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	restarts0 := workerRestarts.Value()
	retries0 := shardRetries.Value()
	p := testPool(t, sp, "worker", []string{EnvFault + "=kill-worker:day0:shard2"}, 2, 0, 30*time.Second)
	requireDayIdentical(t, p, sp, 0, nil)
	if got := workerRestarts.Value() - restarts0; got < 1 {
		t.Errorf("dist_worker_restarts_total advanced by %d, want >= 1", got)
	}
	if got := shardRetries.Value() - retries0; got < 1 {
		t.Errorf("dist_shard_retries_total advanced by %d, want >= 1", got)
	}
}

// TestHangFaultDeadline proves the deadline path: a hung worker trips
// ShardTimeout, is killed, and its shard is reassigned and completes.
func TestHangFaultDeadline(t *testing.T) {
	sp := testSpec{Sessions: 24, ShardSize: 8, BaseSeed: 9}
	p := testPool(t, sp, "worker", []string{EnvFault + "=hang-worker:day0:shard0"}, 2, 0, 2*time.Second)
	requireDayIdentical(t, p, sp, 0, nil)
}

// TestCrashLoopExhaustsBudget: a fleet that dies on every assignment must
// abort with the restart-budget error, not spin forever.
func TestCrashLoopExhaustsBudget(t *testing.T) {
	sp := testSpec{Sessions: 16, ShardSize: 8, BaseSeed: 3}
	p := testPool(t, sp, "crash-assign", nil, 2, 2, 30*time.Second)
	_, _, err := p.RunDay(0, nil, sp.Sessions, sp.ShardSize)
	if err == nil || !strings.Contains(err.Error(), "restart budget") {
		t.Fatalf("RunDay error = %v, want restart-budget exhaustion", err)
	}
}

// TestVersionMismatchRejected: a worker speaking another protocol version
// must fail the handshake loudly.
func TestVersionMismatchRejected(t *testing.T) {
	sp := testSpec{Sessions: 16, ShardSize: 8, BaseSeed: 3}
	p := testPool(t, sp, "old-version", nil, 1, 1, 30*time.Second)
	_, _, err := p.RunDay(0, nil, sp.Sessions, sp.ShardSize)
	if err == nil || !strings.Contains(err.Error(), "protocol") {
		t.Fatalf("RunDay error = %v, want protocol version mismatch", err)
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		in      string
		want    Fault
		wantErr bool
	}{
		{in: "", want: Fault{}},
		{in: "kill-worker:day1:shard2", want: Fault{Kind: FaultKill, Day: 1, Shard: 2}},
		{in: "hang-worker:day0:shard0", want: Fault{Kind: FaultHang, Day: 0, Shard: 0}},
		{in: "kill-worker:day1", wantErr: true},
		{in: "reboot:day1:shard2", wantErr: true},
		{in: "kill-worker:shard2:day1", wantErr: true},
		{in: "kill-worker:day-1:shard2", wantErr: true},
		{in: "kill-worker:dayX:shard2", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseFault(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseFault(%q): no error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFault(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFault(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestFaultAttemptGating: faults fire only at attempt 0, so a reassigned
// shard always completes.
func TestFaultAttemptGating(t *testing.T) {
	f := Fault{Kind: FaultKill, Day: 1, Shard: 2}
	if !f.Matches(FaultKill, assignMsg{Day: 1, Shard: 2, Attempt: 0}) {
		t.Error("fault should match its own coordinates at attempt 0")
	}
	if f.Matches(FaultKill, assignMsg{Day: 1, Shard: 2, Attempt: 1}) {
		t.Error("fault must not fire on a reassignment (attempt 1)")
	}
	if f.Matches(FaultHang, assignMsg{Day: 1, Shard: 2, Attempt: 0}) {
		t.Error("kill fault must not match the hang kind")
	}
	if f.Matches(FaultKill, assignMsg{Day: 0, Shard: 2, Attempt: 0}) {
		t.Error("fault must not match another day")
	}
}
