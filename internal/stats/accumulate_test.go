package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// randPoints draws n heavy-tailed-ish stream points.
func randPoints(rng *rand.Rand, n int) []StreamPoint {
	pts := make([]StreamPoint, n)
	for i := range pts {
		w := 30 + rng.ExpFloat64()*300
		s := 0.0
		if rng.Float64() < 0.12 {
			s = rng.ExpFloat64() * 15
		}
		pts[i] = StreamPoint{Watch: w, Stall: s}
	}
	return pts
}

// TestStreamAccMergeEqualsSingle is the sharded-aggregation invariant:
// folding streams through per-shard accumulators and merging in shard order
// must reproduce byte-identical bootstrap results to one big accumulator.
func TestStreamAccMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 500)

	var single StreamAcc
	for _, p := range pts {
		single.Add(p)
	}

	var merged StreamAcc
	for at := 0; at < len(pts); at += 64 { // 64-stream shards
		end := at + 64
		if end > len(pts) {
			end = len(pts)
		}
		var shard StreamAcc
		for _, p := range pts[at:end] {
			shard.Add(p)
		}
		merged.Merge(&shard)
	}

	if single.Len() != merged.Len() {
		t.Fatalf("lengths differ: %d vs %d", single.Len(), merged.Len())
	}
	if single.StallRatio() != merged.StallRatio() {
		t.Fatalf("stall ratios differ: %v vs %v", single.StallRatio(), merged.StallRatio())
	}
	a := single.Bootstrap(rand.New(rand.NewSource(9)), 300, 0.95)
	b := merged.Bootstrap(rand.New(rand.NewSource(9)), 300, 0.95)
	if a != b {
		t.Fatalf("bootstrap intervals differ: %+v vs %+v", a, b)
	}
	if c := BootstrapStallRatio(rand.New(rand.NewSource(9)), pts, 300, 0.95); a != c {
		t.Fatalf("merge-then-bootstrap %+v != direct bootstrap %+v", a, c)
	}
}

func TestWeightedAccMergeEqualsSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var single, left, right WeightedAcc
	for i := 0; i < 300; i++ {
		v, w := rng.NormFloat64()*2+14, 1+rng.ExpFloat64()*100
		single.Add(v, w)
		if i < 170 {
			left.Add(v, w)
		} else {
			right.Add(v, w)
		}
	}
	var merged WeightedAcc
	merged.Merge(&left)
	merged.Merge(&right)
	if !reflect.DeepEqual(single, merged) {
		t.Fatal("merged accumulator state differs from single-pass state")
	}
	if single.Interval(0.95) != merged.Interval(0.95) {
		t.Fatal("merged interval differs from single-pass interval")
	}
}

func TestWeightedAccUnit(t *testing.T) {
	var a WeightedAcc
	a.AddUnit(1)
	a.AddUnit(3)
	iv := a.Interval(0.95)
	if iv.Point != 2 {
		t.Fatalf("unit-weight mean = %v, want 2", iv.Point)
	}
	if got := MeanSE([]float64{1, 3}, 0.95); iv != got {
		t.Fatalf("AddUnit interval %+v != MeanSE %+v", iv, got)
	}
}

func TestStreamAccStreamYears(t *testing.T) {
	var a StreamAcc
	a.Add(StreamPoint{Watch: 365.25 * 24 * 3600, Stall: 0})
	if got := a.StreamYears(); got != 1 {
		t.Fatalf("StreamYears = %v, want 1", got)
	}
}
