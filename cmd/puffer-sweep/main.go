// Command puffer-sweep runs grids of scenarios once and queries them
// forever. A sweep file names a base scenario plus axes over spec fields;
// every expanded cell is content-addressed by its spec hash, so results
// accumulate in an append-only index and a re-launch executes only the
// cells the index is missing:
//
//	puffer-sweep run -sweep grid.json -index results/index.jsonl \
//	    -checkpoint results/ckpt          # run the missing cells
//	puffer-sweep status -sweep grid.json -index results/index.jsonl
//	puffer-sweep status                    # the registered-scenario catalog
//	puffer-sweep query -index results/index.jsonl \
//	    -where drift.preset=shift -cols name,Fugu.stall_pct
//	puffer-sweep query -index results/index.jsonl -per-day \
//	    -group-by day -agg mean -agg-col gap_pp
//
// Cells run as subprocesses (puffer-sweep re-execs itself per cell) across
// a bounded worker pool; -inprocess runs them in this process instead.
// Each checkpoint directory is keyed by the cell's GuardHash, so a killed
// sweep resumes per-cell through the existing manifest guard.
// PUFFER_SCENARIO_SCALE shrinks every cell for smoke runs — it is applied
// before hashing, so scaled and unscaled runs never collide in the index.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"puffer/internal/obs"
	"puffer/internal/obscli"
	"puffer/internal/results"
	"puffer/internal/scenario"
	"puffer/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("puffer-sweep: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case runCellFlag:
		// Hidden subprocess mode: the executor re-execs this binary once
		// per cell.
		err = cmdRunCell(os.Args[2:])
	case distWorkerFlag:
		// Hidden worker mode: a dist-engine cell's coordinator re-execs
		// this binary once per worker process.
		err = scenario.ServeDistWorker(os.Stdin, os.Stdout)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: puffer-sweep <subcommand> [flags]

  run     expand a sweep file and run the cells the index is missing
  status  show each cell's disposition against the index
          (without -sweep: list the registered base scenarios)
  query   filter/project/aggregate the results index

Run "puffer-sweep <subcommand> -h" for flags.
`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("puffer-sweep run", flag.ContinueOnError)
	sweepFile := fs.String("sweep", "", "sweep spec .json file (required)")
	index := fs.String("index", "results/index.jsonl", "results index to read and append")
	checkpoint := fs.String("checkpoint", "", "checkpoint root (one dir per cell GuardHash; empty = no checkpointing)")
	workers := fs.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS); same-guard cells serialize regardless")
	cellWorkers := fs.Int("cell-workers", 0, "shard workers inside each cell (0 = GOMAXPROCS); never changes results")
	inprocess := fs.Bool("inprocess", false, "run cells in this process instead of subprocesses")
	quiet := fs.Bool("q", false, "suppress progress logging")
	eventsPath := fs.String("events", "", `per-cell lifecycle event log (JSONL) to append to (default: <index>.events; "none" = off)`)
	var obsOpts obscli.Options
	obsOpts.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sweepFile == "" {
		return fmt.Errorf("run: -sweep is required")
	}
	sw, err := sweep.ParseFile(*sweepFile)
	if err != nil {
		return err
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// The event log rides next to the index by default, so `puffer-sweep
	// status -events` can watch a live (or killed) sweep with no extra
	// plumbing. Events alone do not turn metric recording on — only the
	// explicit obs flags do.
	evPath := *eventsPath
	if evPath == "" {
		evPath = *index + ".events"
	}
	var events *obs.EventLog
	if evPath != "none" {
		if events, err = obs.OpenEventLog(evPath); err != nil {
			return err
		}
		defer events.Close()
	}
	stopObs, err := obsOpts.Start(false, logf)
	if err != nil {
		return err
	}
	defer stopObs()

	runner := sweep.InProcess(scenario.RunOptions{
		Workers:     *cellWorkers,
		DistCommand: distWorkerCommand(),
		Logf:        logf,
	})
	if !*inprocess {
		runner = subprocessRunner(*cellWorkers, *quiet)
	}
	rep, err := sweep.Execute(sw, sweep.ExecConfig{
		Workers:        *workers,
		IndexPath:      *index,
		CheckpointRoot: *checkpoint,
		Run:            runner,
		Transform:      scenario.ScaleFromEnv,
		Logf:           logf,
		Events:         events,
	})
	if rep != nil {
		fmt.Printf("cells %d: ran %d, already indexed %d, skipped %d, failed %d\n",
			rep.Total, rep.Ran, rep.Indexed, rep.Skipped, rep.Failed)
	}
	return err
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("puffer-sweep status", flag.ContinueOnError)
	sweepFile := fs.String("sweep", "", "sweep spec .json file (empty: list the registered scenarios instead)")
	index := fs.String("index", "results/index.jsonl", "results index to check against")
	eventsPath := fs.String("events", "", `event log to summarize for the live view (default: <index>.events; "none" = off)`)
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sweepFile == "" {
		// No sweep: the catalog of registered base scenarios, through the
		// same registry walk puffer-daily -list-scenarios uses.
		return scenario.WriteListings(os.Stdout, *jsonOut)
	}
	sw, err := sweep.ParseFile(*sweepFile)
	if err != nil {
		return err
	}
	cells, err := sweep.Status(sw, *index, scenario.ScaleFromEnv)
	if err != nil {
		return err
	}
	if *jsonOut {
		type row struct {
			Index     int    `json:"index"`
			Name      string `json:"name"`
			Hash      string `json:"hash"`
			GuardHash string `json:"guard_hash"`
			State     string `json:"state"`
		}
		rows := make([]row, 0, len(cells))
		for _, c := range cells {
			rows = append(rows, row{c.Index, c.Name, c.Hash, c.GuardHash, c.State})
		}
		return writeJSON(os.Stdout, rows)
	}
	indexed := 0
	for _, c := range cells {
		if c.State == "indexed" {
			indexed++
		}
		fmt.Printf("%-8s %s (%s)\n", c.State, c.Name, c.Hash[:12])
	}
	fmt.Printf("%d/%d cells indexed in %s\n", indexed, len(cells), *index)
	printLive(os.Stdout, *eventsPath, *index)
	return nil
}

// printLive adds the event-log view of a sweep in flight: which cells a
// live (or killed) execution had started, and how far it got — read
// straight off the append-only log, so it works while `run` holds the
// index open. The sidecar is best-effort by design: an absent or empty log
// just means no live view, a truncated final record (a killed writer)
// yields the view up to the last whole record, and an unreadable log
// degrades to the index-only view with a note — status never fails over
// its sidecar.
func printLive(w io.Writer, eventsPath, index string) {
	if eventsPath == "" {
		eventsPath = index + ".events"
	}
	if eventsPath == "none" {
		return
	}
	evs, err := obs.ReadEvents(eventsPath)
	if err != nil {
		fmt.Fprintf(w, "event log %s: unreadable (%v); showing index-only view\n", eventsPath, err)
		return
	}
	if len(evs) == 0 {
		return
	}
	lv := sweep.LiveFromEvents(evs)
	state := "in flight"
	if lv.Finished {
		state = "finished"
	}
	last := "unknown"
	if !lv.LastEvent.IsZero() {
		last = lv.LastEvent.Local().Format("2006-01-02 15:04:05")
	}
	fmt.Fprintf(w, "event log %s: last execution %s (%d done, %d failed; last event %s)\n",
		eventsPath, state, lv.Done, lv.Failed, last)
	for _, name := range lv.Running {
		fmt.Fprintf(w, "running  %s\n", name)
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("puffer-sweep query", flag.ContinueOnError)
	index := fs.String("index", "results/index.jsonl", "results index to query")
	where := fs.String("where", "", `predicates, e.g. "drift.preset=shift,daily.sessions>=100"`)
	cols := fs.String("cols", "", "projection columns, comma-separated (default: name,hash)")
	groupBy := fs.String("group-by", "", "group by these columns, comma-separated")
	agg := fs.String("agg", "", "aggregate per group: mean, sum, min, max, or count")
	aggCol := fs.String("agg-col", "", "column the aggregate reduces")
	perDay := fs.Bool("per-day", false, "query the per-day staleness gap rows instead of one row per record")
	jsonOut := fs.Bool("json", false, "emit JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ix, err := results.Load(*index)
	if err != nil {
		return err
	}
	preds, err := results.ParsePreds(*where)
	if err != nil {
		return err
	}
	q := results.Query{
		PerDay:  *perDay,
		Where:   preds,
		Cols:    splitList(*cols),
		GroupBy: splitList(*groupBy),
		Agg:     *agg,
		AggCol:  *aggCol,
	}
	table, err := ix.Query(q)
	if err != nil {
		return err
	}
	if *jsonOut {
		return table.WriteJSON(os.Stdout)
	}
	return table.WriteText(os.Stdout)
}
