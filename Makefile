# Local developer entry points, mirrored 1:1 by .github/workflows/ci.yml:
# `make ci` runs exactly what CI runs, so a green local run means a green PR.

GO ?= go
# Session count for the benchmark smoke pass — small enough to finish in a
# couple of minutes, large enough to exercise every figure end to end.
BENCH_SESSIONS ?= 40

# Checkpoint dir for the daily-loop smoke run.
DAILY_DIR ?= /tmp/puffer-daily-smoke

# Session-count multiplier applied to the examples in the docs smoke run —
# small enough that all four examples finish in seconds.
EXAMPLE_SCALE ?= 0.1

# Days/sessions/epochs multiplier for the scenario smoke run (every
# registered scenario, clamped to 2 days x 8 sessions x 1 epoch minimum).
SCENARIO_SCALE ?= 0.02

# Scratch dir for the sweep smoke run's index + checkpoints.
SWEEP_DIR ?= /tmp/puffer-sweep-smoke

# Output file for the machine-readable benchmark run (cmd/benchjson).
BENCH_JSON ?= BENCH_10.json
# Benchtime for bench-json: 1x is smoke speed; raise (e.g. 5x, 1s) for
# timings worth committing.
BENCH_TIME ?= 1x

.PHONY: fmt fmt-check vet build test bench bench-json bench-diff daily-smoke docs-smoke scenario-smoke sweep-smoke obs-smoke serve-smoke trace-smoke dist-smoke ci

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Compile and execute every benchmark once (figures included) as a smoke
# check; use `go test -bench=. -benchmem ./...` directly for real timings.
bench:
	PUFFER_BENCH_SESSIONS=$(BENCH_SESSIONS) $(GO) test -run=NoTests -bench=. -benchtime=1x ./...

# Daily-loop smoke: run the continual experiment for one day into a fresh
# checkpoint dir, then ask the same dir for two days — the second invocation
# must resume at day 1, exercising kill-and-resume end to end (2 days x 40
# sessions, nightly retraining on). Both execution engines run the same
# smoke, so every push exercises the per-session and fleet paths.
daily-smoke:
	rm -rf $(DAILY_DIR) $(DAILY_DIR)-fleet
	$(GO) run ./cmd/puffer-daily -days 1 -sessions 40 -window 2 -epochs 2 -seed 1 -checkpoint $(DAILY_DIR) -ablation=false -q
	$(GO) run ./cmd/puffer-daily -days 2 -sessions 40 -window 2 -epochs 2 -seed 1 -checkpoint $(DAILY_DIR) -ablation=false
	test -d $(DAILY_DIR)/retrain/day_001
	$(GO) run ./cmd/puffer-daily -days 1 -sessions 40 -window 2 -epochs 2 -seed 1 -engine fleet -arrival-rate 2 -checkpoint $(DAILY_DIR)-fleet -ablation=false -q
	$(GO) run ./cmd/puffer-daily -days 2 -sessions 40 -window 2 -epochs 2 -seed 1 -engine fleet -arrival-rate 2 -checkpoint $(DAILY_DIR)-fleet -ablation=false
	test -d $(DAILY_DIR)-fleet/retrain/day_001

# Docs smoke: fail if any package is missing a package doc comment
# (cmd/doccheck), then briefly run every examples/ program end to end —
# examples have no test files, so this is their only CI coverage.
docs-smoke:
	$(GO) run ./cmd/doccheck
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/quickstart
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/abr-tournament
	rm -f tournament_streams.csv
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/uncertainty
	PUFFER_EXAMPLE_SCALE=$(EXAMPLE_SCALE) $(GO) run ./examples/insitu-vs-emulation

# Scenario smoke: briefly run every registered scenario (scaled down via
# PUFFER_SCENARIO_SCALE) and prove the scenario API's round trip on each —
# the -dump-scenario output, run from the file, is byte-identical on stdout
# to running the scenario by name.
scenario-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-daily ./cmd/puffer-daily; \
	$$bin/puffer-daily -list-scenarios > $$bin/list.txt; \
	names=$$(awk '{print $$1}' $$bin/list.txt); \
	test -n "$$names" || { echo "scenario-smoke: no registered scenarios"; exit 1; }; \
	for s in $$names; do \
		echo "== scenario $$s"; \
		$$bin/puffer-daily -scenario $$s -dump-scenario > $$bin/$$s.json; \
		PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-daily -scenario $$s -q > $$bin/$$s.byname.out; \
		PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-daily -scenario $$bin/$$s.json -q > $$bin/$$s.byfile.out; \
		cmp $$bin/$$s.byname.out $$bin/$$s.byfile.out; \
	done

# Sweep smoke: run the committed 2x2 drift x engine grid into a fresh
# index, then launch the identical sweep again — the second launch must
# find every cell in the index and execute zero runs. A query over the
# populated index must match the committed golden (deterministic columns
# only: expansion names, axis values, spec hashes).
sweep-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-sweep ./cmd/puffer-sweep; \
	rm -rf $(SWEEP_DIR); \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-sweep run \
		-sweep scenarios/sweeps/smoke-grid.json \
		-index $(SWEEP_DIR)/index.jsonl -checkpoint $(SWEEP_DIR)/ckpt; \
	out=$$(PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-sweep run \
		-sweep scenarios/sweeps/smoke-grid.json \
		-index $(SWEEP_DIR)/index.jsonl -checkpoint $(SWEEP_DIR)/ckpt); \
	echo "$$out"; \
	case "$$out" in *"ran 0,"*) ;; *) echo "sweep-smoke: second launch executed cells"; exit 1;; esac; \
	$$bin/puffer-sweep query -index $(SWEEP_DIR)/index.jsonl \
		-cols name,drift.preset,engine.kind,hash > $$bin/query.out; \
	cmp $$bin/query.out scenarios/sweeps/smoke-grid.golden

# Machine-readable benchmark run: every benchmark through cmd/benchjson
# into $(BENCH_JSON) — bench name, ns/op, allocs/op, custom metrics, plus
# the fleet sessions/sec summary the observability contract budgets
# regressions against.
bench-json:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PUFFER_BENCH_SESSIONS=$(BENCH_SESSIONS) $(GO) test -run=NoTests -bench=. \
		-benchtime=$(BENCH_TIME) -benchmem ./... | tee $$tmp/bench.txt; \
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) $$tmp/bench.txt; \
	echo "wrote $(BENCH_JSON)"

# Advisory benchmark regression check: re-run the suite at smoke speed and
# diff against the committed $(BENCH_JSON). Never a gate — 1x timings are
# too noisy to block a merge on — the report is a reviewer aid.
bench-diff:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	PUFFER_BENCH_SESSIONS=$(BENCH_SESSIONS) $(GO) test -run=NoTests -bench=. \
		-benchtime=$(BENCH_TIME) -benchmem ./... > $$tmp/bench.txt; \
	$(GO) run ./cmd/benchjson -o $$tmp/new.json $$tmp/bench.txt; \
	$(GO) run ./cmd/benchjson -diff $(BENCH_JSON) $$tmp/new.json

# Observability smoke: the zero-perturbation contract end to end on real
# binaries. The same 2-day fleet scenario runs twice — observability off,
# then fully on (live endpoint + exit dump + event log) with the snapshot
# endpoint curled mid-run — and the runs must agree byte-for-byte on
# stdout and on every checkpoint file. The live and exit snapshots must be
# well-formed (jq) and publish the decision-latency summary.
obs-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-daily ./cmd/puffer-daily; \
	flags="-days 2 -sessions 48 -window 2 -epochs 1 -seed 7 -engine fleet -arrival-rate 4 -ablation=false"; \
	$$bin/puffer-daily $$flags -checkpoint $$bin/off-ckpt -q > $$bin/off.out; \
	port=$$((20000 + $$$$ % 20000)); \
	$$bin/puffer-daily $$flags -checkpoint $$bin/on-ckpt \
		-obs-listen 127.0.0.1:$$port -obs-dump $$bin/metrics.json \
		-obs-events $$bin/run.events -q > $$bin/on.out & pid=$$!; \
	live=""; \
	for i in $$(seq 1 500); do \
		if curl -sf http://127.0.0.1:$$port/metrics.json -o $$bin/live.json \
			&& curl -sf http://127.0.0.1:$$port/metrics -o $$bin/live.prom \
			&& curl -sf http://127.0.0.1:$$port/debug/pprof/cmdline -o $$bin/cmdline; then \
			live=ok; break; \
		fi; \
		kill -0 $$pid 2>/dev/null || break; \
		sleep 0.02; \
	done; \
	wait $$pid; \
	test -n "$$live" || { echo "obs-smoke: live snapshot endpoint never answered"; exit 1; }; \
	cmp $$bin/off.out $$bin/on.out; \
	diff -r $$bin/off-ckpt $$bin/on-ckpt; \
	jq -e '(.counters | type=="array") and (.histograms | type=="array")' $$bin/live.json >/dev/null; \
	grep -q '^fleet_decision_ns{quantile="0.99"}' $$bin/live.prom; \
	test -s $$bin/cmdline; \
	jq -e '[.histograms[] | select(.name=="fleet_decision_ns")] | first | .count > 0' $$bin/metrics.json >/dev/null; \
	jq -s -e '[.[] | select(.type=="day_done")] | length == 2' $$bin/run.events >/dev/null; \
	echo "obs-smoke: obs-on run byte-identical to obs-off; endpoint and snapshots well-formed"

# Serving smoke: the wall-clock layer end to end on real binaries. A
# daemon serves day 0 of the stationary scenario (scaled down via
# PUFFER_SCENARIO_SCALE so the whole target stays well under a minute);
# a paced load generator is SIGKILLed mid-run — client death must never
# wound the daemon — then a fresh client runs the full trial and its
# results table must be byte-identical to the -virtual twin (the same
# plan on the deterministic virtual-time engine). The live metrics
# endpoint is curled mid-run; SIGTERM must drain cleanly with zero
# session-clock violations and a served decision-latency histogram.
serve-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin ./cmd/puffer-serve ./cmd/puffer-load; \
	port=$$((20000 + $$$$ % 20000)); obsport=$$((port + 7)); \
	common="-scenario stationary -day 0 -sessions 64"; \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-serve $$common \
		-listen 127.0.0.1:$$port -obs-listen 127.0.0.1:$$obsport \
		-drain-timeout 5s -q > $$bin/serve.out & pid=$$!; \
	for i in $$(seq 1 500); do \
		grep -q '^serving ' $$bin/serve.out 2>/dev/null && break; \
		kill -0 $$pid 2>/dev/null || { echo "serve-smoke: daemon died"; exit 1; }; \
		sleep 0.02; \
	done; \
	grep -q '^serving ' $$bin/serve.out || { echo "serve-smoke: no readiness line"; exit 1; }; \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-load $$common \
		-addr 127.0.0.1:$$port -timescale 0.2 -q > /dev/null 2>&1 & lpid=$$!; \
	sleep 1; kill -9 $$lpid 2>/dev/null || true; wait $$lpid 2>/dev/null || true; \
	curl -sf http://127.0.0.1:$$obsport/metrics.json -o $$bin/live.json; \
	jq -e '.counters | type=="array"' $$bin/live.json >/dev/null; \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-load $$common \
		-addr 127.0.0.1:$$port -q > $$bin/served.out; \
	PUFFER_SCENARIO_SCALE=$(SCENARIO_SCALE) $$bin/puffer-load $$common \
		-virtual -q > $$bin/virtual.out; \
	cmp $$bin/served.out $$bin/virtual.out; \
	curl -sf http://127.0.0.1:$$obsport/metrics.json -o $$bin/final.json; \
	jq -e '([.counters[] | select(.name=="serve_clock_violations_total") | .value] + [0]) | first == 0' $$bin/final.json >/dev/null; \
	jq -e '[.counters[] | select(.name=="serve_decisions_total")] | first | .value > 0' $$bin/final.json >/dev/null; \
	jq -e '[.histograms[] | select(.name=="serve_decision_ns")] | first | .count > 0' $$bin/final.json >/dev/null; \
	kill -TERM $$pid; wait $$pid; \
	grep -q '^drained:' $$bin/serve.out; \
	echo "serve-smoke: served table byte-identical to the virtual twin; drain clean; zero clock violations"

# Tracing smoke: decision-level tracing end to end on a real binary. The
# same 2-day fleet scenario runs untraced, then with every decision traced
# to a Chrome trace file — stdout must be byte-identical (tracing is
# wall-side only), and the trace must be well-formed trace-event JSON
# (Perfetto-loadable) carrying the decision-path span taxonomy.
trace-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-daily ./cmd/puffer-daily; \
	flags="-days 2 -sessions 48 -window 2 -epochs 1 -seed 7 -engine fleet -arrival-rate 4 -ablation=false"; \
	$$bin/puffer-daily $$flags -q > $$bin/off.out; \
	$$bin/puffer-daily $$flags -trace-out $$bin/trace.json -q > $$bin/on.out; \
	cmp $$bin/off.out $$bin/on.out; \
	jq -e '.displayTimeUnit == "ms"' $$bin/trace.json >/dev/null; \
	jq -e '[.traceEvents[] | select(.ph=="X")] | length > 0' $$bin/trace.json >/dev/null; \
	jq -e '[.traceEvents[] | select(.ph=="X")] | all(.ts >= 0 and .dur >= 0 and (.name|type=="string") and (.pid|type=="number") and (.tid|type=="number"))' $$bin/trace.json >/dev/null; \
	names=$$(jq -r '[.traceEvents[] | select(.ph=="X") | .name] | unique | join(" ")' $$bin/trace.json); \
	for want in fleet_decision batch_residency infer_flush kernel day trial retrain; do \
		case " $$names " in *" $$want "*) ;; *) echo "trace-smoke: missing $$want span (got: $$names)"; exit 1;; esac; \
	done; \
	jq -e '[.traceEvents[] | select(.ph=="M" and .name=="process_name")] | length > 0' $$bin/trace.json >/dev/null; \
	echo "trace-smoke: traced run byte-identical to untraced; Chrome trace well-formed ($$names)"

# Dist smoke: the coordinator/worker engine end to end on a real binary.
# The same 2-day scenario runs single-process, then split across 4 worker
# processes — with the coordinator killed between days (simulated by a
# -days 1 run resumed to -days 2) AND a worker process killed mid-shard on
# the resumed day via the fault hook. Stdout must be byte-identical, every
# checkpoint file must match (manifests excepted: they record the spec,
# which names the engine), and the metrics dump must show the worker
# restart and shard reassignment actually happened.
dist-smoke:
	@set -e; \
	bin=$$(mktemp -d); trap 'rm -rf "$$bin"' EXIT; \
	$(GO) build -o $$bin/puffer-daily ./cmd/puffer-daily; \
	flags="-days 2 -sessions 48 -window 2 -epochs 1 -seed 7 -shard 8 -ablation=false"; \
	$$bin/puffer-daily $$flags -checkpoint $$bin/single-ckpt -q > $$bin/single.out; \
	$$bin/puffer-daily $$flags -days 1 -dist-workers 4 -checkpoint $$bin/dist-ckpt -q > /dev/null; \
	PUFFER_DIST_FAULT=kill-worker:day1:shard2 $$bin/puffer-daily $$flags -dist-workers 4 \
		-checkpoint $$bin/dist-ckpt -obs-dump $$bin/metrics.json -q > $$bin/dist.out; \
	cmp $$bin/single.out $$bin/dist.out; \
	diff -r --exclude=manifest.json $$bin/single-ckpt $$bin/dist-ckpt; \
	jq -e '[.counters[] | select(.name=="dist_worker_restarts_total")] | first | .value >= 1' $$bin/metrics.json >/dev/null; \
	jq -e '[.counters[] | select(.name=="dist_shard_retries_total")] | first | .value >= 1' $$bin/metrics.json >/dev/null; \
	echo "dist-smoke: worker-process run byte-identical to single-process, through a coordinator restart and a killed worker"

ci: fmt-check vet build test bench daily-smoke docs-smoke scenario-smoke sweep-smoke obs-smoke serve-smoke trace-smoke dist-smoke
