package fleet

import (
	"puffer/internal/core"
	"puffer/internal/nn"
	"puffer/internal/obs"
)

// Inference-service metrics (write-only; see the obs package contract).
// The aggregate fields on InferenceService stay the deterministic record —
// these duplicate them into the wall-side registry with timing added.
var (
	svcBatchRows      = obs.Default.Histogram("fleet_batch_rows")
	svcFlushNS        = obs.Default.Histogram("fleet_flush_ns")
	svcFlushesTotal   = obs.Default.Counter("fleet_flushes_total")
	svcFlushesEmpty   = obs.Default.Counter("fleet_flushes_empty_total")
	svcRowsTotal      = obs.Default.Counter("fleet_rows_total")
	svcSnapshotsTotal = obs.Default.Counter("fleet_model_snapshots_total")
)

// InferenceService executes the staged prediction work of many concurrent
// sessions. Sessions park at their decision points with feature rows staged
// per horizon net (core.PendingStep); the service concatenates every row
// due in the current virtual tick into one batch per net and runs a single
// batched forward-plus-softmax pass over each, then finishes every step
// (throughput conversion, point-estimate collapse) exactly as the direct
// path would.
//
// The service owns one packed snapshot (nn.PackedMLP: transposed weights,
// SIMD kernel) per distinct net it has seen — the per-model "compiled
// artifact" a centralized server can afford to build once and reuse across
// every request, which ephemeral per-session predictors cannot. Snapshots
// are keyed by net identity, so a model rotation (new *nn.MLP values)
// naturally repacks. Rows are bitwise identical to the per-session path
// regardless of how they are batched. Not safe for concurrent use.
type InferenceService struct {
	groups map[*nn.MLP]*serviceGroup
	order  []*serviceGroup // first-use order: deterministic iteration
	feats  []float64
	probs  []float64

	// Aggregate counters (deterministic for a deterministic workload).
	flushes   int
	batches   int
	rows      int64
	maxBatch  int
	snapshots int
}

// serviceGroup is the per-net batch under assembly plus the packed model.
type serviceGroup struct {
	net    *nn.MLP
	packed *nn.PackedMLP
	ws     *nn.BatchWorkspace
	pend   []*core.PendingStep
	rowSum int
}

// NewInferenceService returns an empty service.
func NewInferenceService() *InferenceService {
	return &InferenceService{groups: make(map[*nn.MLP]*serviceGroup)}
}

// Enqueue stages one session's pending steps into the current batch. The
// steps (and their buffers) must stay valid until the next Flush returns.
func (s *InferenceService) Enqueue(steps []core.PendingStep) {
	for i := range steps {
		ps := &steps[i]
		g, ok := s.groups[ps.Net]
		if !ok {
			g = &serviceGroup{
				net:    ps.Net,
				packed: ps.Net.NewPacked(),
				ws:     ps.Net.NewBatchWorkspace(64),
			}
			s.groups[ps.Net] = g
			s.order = append(s.order, g)
			s.snapshots++
			svcSnapshotsTotal.Inc()
		}
		g.pend = append(g.pend, ps)
		g.rowSum += ps.Rows
	}
}

// Flush executes one cross-session batch per net over everything staged
// since the previous flush and completes every step's distributions.
func (s *InferenceService) Flush() {
	t0 := obs.Now()
	any := false
	var totalRows int64
	for _, g := range s.order {
		if g.rowSum == 0 {
			continue
		}
		any = true
		totalRows += int64(g.rowSum)
		dim := g.net.InputSize()
		nOut := g.net.OutputSize()
		s.feats = growFloats(s.feats, g.rowSum*dim)
		s.probs = growFloats(s.probs, g.rowSum*nOut)
		at := 0
		for _, ps := range g.pend {
			copy(s.feats[at*dim:(at+ps.Rows)*dim], ps.Feats[:ps.Rows*dim])
			at += ps.Rows
		}
		g.packed.PredictDistBatch(g.ws, s.feats[:g.rowSum*dim], g.rowSum, s.probs[:g.rowSum*nOut])
		at = 0
		for _, ps := range g.pend {
			ps.Finish(s.probs[at*nOut : (at+ps.Rows)*nOut])
			at += ps.Rows
		}
		s.batches++
		s.rows += int64(g.rowSum)
		if g.rowSum > s.maxBatch {
			s.maxBatch = g.rowSum
		}
		svcBatchRows.Observe(int64(g.rowSum))
		svcRowsTotal.Add(int64(g.rowSum))
		g.pend = g.pend[:0]
		g.rowSum = 0
	}
	if any {
		s.flushes++
		svcFlushesTotal.Inc()
		svcFlushNS.ObserveSince(t0)
		// The flush is shared work: attribute its span (parenting the kernel
		// spans recorded inside PredictDistBatch) to the flush owner's
		// designated traced decision, when one exists.
		if tr := obs.Tracing(); tr != nil {
			if trace, parent := obs.FlushTrace(); trace != 0 {
				tr.Record(obs.Span{Trace: trace, ID: tr.NewSpanID(), Parent: parent,
					Name: "infer_flush", Start: t0, Dur: obs.SinceNS(t0),
					Attrs: []obs.Attr{{Key: "rows", Val: totalRows}}})
			}
		}
	} else {
		svcFlushesEmpty.Inc()
	}
}

// growFloats resizes s to n elements, reusing capacity when possible.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
