package serve

import (
	"fmt"

	"puffer/internal/experiment"
	"puffer/internal/fleet"
	"puffer/internal/runner"
	"puffer/internal/scenario"
)

// Plan pins one day of one scenario as a servable trial: the environment,
// seeds, scheme names, and arrival schedule that both ends of the wire —
// and the deterministic virtual-time twin — must agree on. NewPlan builds
// the cheap client-side view (no models); Warm trains the serving model by
// replaying the scenario's daily loop up to the chosen day and attaches
// the scheme factories, which is what the daemon and the twin need.
//
// Hash is the plan's identity: the spec's content hash plus the day. The
// client sends it in every session's handshake and the server rejects a
// mismatch, so a differential run can never silently compare two different
// experiments.
type Plan struct {
	// Spec is the fully-defaulted scenario.
	Spec scenario.Spec
	// Day is which deployment day of the scenario is being served.
	Day int
	// TrialSeed and AnalysisSeed are the daily loop's seeds for this day:
	// sessions randomize and analyze exactly as runner.Run would.
	TrialSeed    int64
	AnalysisSeed int64
	// Env is the world sessions run in (drift-aware for the plan's day).
	Env experiment.Env
	// Sessions is the day's trial size; ShardSize its aggregation shards.
	Sessions  int
	ShardSize int
	// SchemeNames are the day's arms in randomization order. A session's
	// arm is SchemeNames[first Intn draw of its session RNG].
	SchemeNames []string
	// Arrivals and Tick mirror the fleet engine's scheduling knobs; the
	// load generator reuses the identical arrival schedule.
	Arrivals fleet.ArrivalProcess
	Tick     float64
	// Hash is the plan identity validated in the session handshake.
	Hash string

	// Schemes and Slot exist only after Warm: the per-session algorithm
	// factories (sharing the served model through Slot) the daemon and the
	// virtual twin instantiate. Client-side plans leave them nil.
	Schemes []experiment.Scheme
	Slot    *runner.ModelSlot
}

// NewPlan derives the client-side plan for one day of a scenario. It is
// cheap — no model is trained — and deterministic: both ends derive the
// same plan from the same spec and day.
func NewPlan(spec scenario.Spec, day int) (*Plan, error) {
	d := spec.WithDefaults()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if day < 0 || day >= d.Daily.Days {
		return nil, fmt.Errorf("serve: day %d out of range for a %d-day scenario", day, d.Daily.Days)
	}
	env, err := d.BuildEnv()
	if err != nil {
		return nil, err
	}
	seed := *d.Seed
	p := &Plan{
		Spec:         d,
		Day:          day,
		TrialSeed:    runner.DaySeed(seed, day),
		AnalysisSeed: runner.DayAnalysisSeed(seed, day),
		Env:          env,
		Sessions:     d.Daily.Sessions,
		ShardSize:    d.ShardSize,
		Tick:         d.Engine.Tick,
		Hash:         fmt.Sprintf("%s:day%d", d.Hash(), day),
	}
	if a := d.Engine.Arrival; a.Process == "burst" {
		p.Arrivals = fleet.BurstArrivals{Burst: a.Burst, Gap: a.Gap}
	} else {
		p.Arrivals = fleet.PoissonArrivals{Rate: a.Rate}
	}
	// Scheme names follow the daily loop: day 0 deploys the bootstrap
	// mixture (no model exists yet); later days deploy Fugu alongside BBA.
	names := func(ss []experiment.Scheme) []string {
		out := make([]string, len(ss))
		for i, s := range ss {
			out[i] = s.Name
		}
		return out
	}
	if day == 0 {
		p.SchemeNames = names(runner.BootstrapSchemes(0))
	} else {
		p.SchemeNames = names(runner.DeploySchemes(&runner.ModelSlot{}, 0))
	}
	return p, nil
}

// Warm makes the plan servable: for day > 0 it replays the scenario's
// daily loop for the preceding days (trials, telemetry, nightly training —
// runner.Run itself, so the model serving day D is exactly the model the
// daily loop would serve), then builds the day's scheme factories around a
// model slot. Day 0 needs no model and warms instantly.
func (p *Plan) Warm(workers int, logf func(format string, args ...any)) error {
	p.Slot = &runner.ModelSlot{}
	if p.Day > 0 {
		cfg, err := scenario.Compile(p.Spec)
		if err != nil {
			return err
		}
		cfg.Days = p.Day
		cfg.Workers = workers
		cfg.Logf = logf
		res, err := runner.Run(cfg)
		if err != nil {
			return fmt.Errorf("serve: warmup through day %d: %w", p.Day-1, err)
		}
		if res.TTP == nil {
			return fmt.Errorf("serve: warmup through day %d produced no model", p.Day-1)
		}
		p.Slot.Store(res.TTP)
		p.Schemes = runner.DeploySchemes(p.Slot, p.TrialSeed)
	} else {
		p.Schemes = runner.BootstrapSchemes(p.TrialSeed)
	}
	return nil
}

// Trial lowers a warmed plan into the experiment config the virtual twin
// executes — identical to the trial runner.Run's liveDay would build for
// this day, minus the telemetry recorder (recording never changes results).
func (p *Plan) Trial() (*experiment.Config, error) {
	if p.Schemes == nil {
		return nil, fmt.Errorf("serve: plan is not warmed (no scheme factories)")
	}
	return &experiment.Config{
		Env:      p.Env,
		Schemes:  p.Schemes,
		Sessions: p.Sessions,
		Seed:     p.TrialSeed,
		Day:      p.Day,
	}, nil
}

// Scheme returns the named arm's factory from a warmed plan.
func (p *Plan) Scheme(name string) (experiment.Scheme, bool) {
	for _, s := range p.Schemes {
		if s.Name == name {
			return s, true
		}
	}
	return experiment.Scheme{}, false
}

// RunVirtual executes the warmed plan on the virtual-time fleet engine —
// the deterministic twin of the wall-clock path. The returned per-scheme
// stats must match a full RunLoad of the same plan byte for byte; the
// differential harness pins exactly that.
func RunVirtual(p *Plan, workers int) ([]experiment.SchemeStats, *fleet.Stats, error) {
	trial, err := p.Trial()
	if err != nil {
		return nil, nil, err
	}
	acc, fst, err := fleet.RunTrial(trial, fleet.Config{
		ShardSize: p.ShardSize,
		Workers:   workers,
		Tick:      p.Tick,
		Arrivals:  p.Arrivals,
	})
	if err != nil {
		return nil, nil, err
	}
	return acc.Analyze(p.AnalysisSeed), fst, nil
}
