package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryGetOrCreate: lookups are idempotent and return the same
// handle, so package-level vars built at init in any order all share
// state.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("Counter is not get-or-create")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("Gauge is not get-or-create")
	}
	if r.Histogram("c") != r.Histogram("c") {
		t.Fatal("Histogram is not get-or-create")
	}
	if r.Stage("c_ns").H != r.Stage("c_ns").H {
		t.Fatal("Stage is not get-or-create")
	}
	if got := r.Counter("a").Name(); got != "a" {
		t.Fatalf("counter name %q", got)
	}
}

// TestSnapshotSortedCanonical: snapshots list every metric sorted by name
// and render to identical JSON for identical values.
func TestSnapshotSortedCanonical(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("z_total").Add(3)
	r.Counter("a_total").Add(1)
	r.Gauge("m_rate").Set(2.5)
	r.Histogram("b_ns").Observe(100)
	r.Histogram("a_ns").Observe(50)

	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_total" || s.Counters[1].Name != "z_total" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if len(s.Histograms) != 2 || s.Histograms[0].Name != "a_ns" || s.Histograms[1].Name != "b_ns" {
		t.Fatalf("histograms not sorted: %+v", s.Histograms)
	}
	if s.Counters[1].Value != 3 || s.Gauges[0].Value != 2.5 {
		t.Fatalf("values wrong: %+v", s)
	}

	var one, two strings.Builder
	if err := s.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatal("snapshot JSON is not canonical across captures of unchanged values")
	}
	var decoded Snapshot
	if err := json.Unmarshal([]byte(one.String()), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

// TestWritePrometheus: the text exposition carries TYPE lines, counter and
// gauge samples, and per-histogram quantile/sum/count lines.
func TestWritePrometheus(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("reqs_total").Add(7)
	r.Gauge("rate").Set(1.5)
	h := r.Histogram("lat_ns")
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	var buf strings.Builder
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 7\n",
		"# TYPE rate gauge\nrate 1.5\n",
		"# TYPE lat_ns summary\n",
		`lat_ns{quantile="0.5"} `,
		`lat_ns{quantile="0.99"} `,
		`lat_ns{quantile="0.999"} `,
		"lat_ns_sum 5050\n",
		"lat_ns_count 100\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestDumpFile: atomic JSON dump lands and parses.
func TestDumpFile(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("c_total").Add(2)
	path := filepath.Join(t.TempDir(), "nested", "metrics.json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := DumpFile(path, r); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(blob, &s); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 2 {
		t.Fatalf("dump content wrong: %+v", s)
	}
}

// TestServe: the live endpoint answers /metrics (Prometheus text),
// /metrics.json and /debug/vars (JSON snapshot), and /debug/pprof/cmdline.
func TestServe(t *testing.T) {
	withEnabled(t)
	r := NewRegistry()
	r.Counter("served_total").Add(9)
	r.Histogram("d_ns").Observe(1234)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "served_total 9") || !strings.Contains(body, `d_ns{quantile="0.99"}`) {
		t.Fatalf("/metrics body wrong:\n%s", body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		body, ctype := get(path)
		var s Snapshot
		if err := json.Unmarshal([]byte(body), &s); err != nil {
			t.Fatalf("%s is not a JSON snapshot: %v", path, err)
		}
		if len(s.Counters) != 1 || s.Counters[0].Value != 9 {
			t.Fatalf("%s content wrong: %+v", path, s)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("%s content type %q", path, ctype)
		}
	}
	if body, _ := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
	if body, _ := get("/"); !strings.Contains(body, "/metrics") {
		t.Fatalf("index page wrong:\n%s", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestProfileHooks: the -cpuprofile/-memprofile primitives produce
// non-empty pprof files.
func TestProfileHooks(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = fmt.Sprintf("%d", i)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}
