package abr

import (
	"math"

	"puffer/internal/media"
	"puffer/internal/tcpsim"
)

// HistoryLen is how many past chunks of context an Observation carries,
// matching the TTP's t = 8.
const HistoryLen = 8

// ChunkRecord summarizes one previously-sent chunk.
type ChunkRecord struct {
	Size      float64 // bytes
	TransTime float64 // seconds from send decision to last byte
	SSIMdB    float64
	Quality   int // ladder rung index
}

// Throughput returns the chunk's achieved throughput in bits/s.
func (r ChunkRecord) Throughput() float64 {
	if r.TransTime <= 0 {
		return 0
	}
	return r.Size * 8 / r.TransTime
}

// Observation is everything the server knows when choosing the next chunk's
// quality. The ABR scheme runs server-side, as on Puffer.
type Observation struct {
	ChunkIndex int
	// Buffer is the client's playback buffer in seconds.
	Buffer float64
	// BufferCap is the client's maximum buffer (15 s on Puffer).
	BufferCap float64
	// LastQuality is the rung of the previous chunk, or -1 at stream
	// start.
	LastQuality int
	// LastSSIM is the SSIM (dB) of the previous chunk; meaningful only
	// when LastQuality >= 0.
	LastSSIM float64
	// History holds up to HistoryLen past chunks, oldest first.
	History []ChunkRecord
	// TCP is the sender-side tcp_info snapshot at decision time.
	TCP tcpsim.Info
	// Horizon holds the upcoming chunks (the one being decided first).
	// Live encoding runs ahead of the playhead, so sizes and SSIMs of
	// the next few chunks are known exactly.
	Horizon []media.Chunk
}

// Algorithm selects the encoded version of each chunk. Implementations keep
// per-stream state and are not safe for concurrent use; the experiment
// harness creates one instance per concurrent stream.
type Algorithm interface {
	// Name identifies the scheme in results tables.
	Name() string
	// Choose returns the ladder rung to send for obs.Horizon[0].
	Choose(obs *Observation) int
	// Reset clears per-stream state at the start of a new stream.
	Reset()
}

// DeferredAlgorithm is implemented by algorithms whose decision can be
// split around an external inference phase: PrepareChoose stages all of the
// decision's prediction work (a deferring predictor records feature rows
// instead of running its network), an external service may then execute the
// staged work — batched across many concurrent sessions — and FinishChoose
// completes the decision from the filled distributions. For any state,
// PrepareChoose(obs) followed by FinishChoose(obs) must return exactly what
// Choose(obs) would have, including identical RNG draw sequences.
type DeferredAlgorithm interface {
	Algorithm
	// PrepareChoose stages the decision for obs.
	PrepareChoose(obs *Observation)
	// FinishChoose completes the decision staged by the immediately
	// preceding PrepareChoose with the same obs.
	FinishChoose(obs *Observation) int
}

// QoEWeights holds the coefficients of the paper's Equation 1:
// QoE = SSIM - λ·|ΔSSIM| - µ·stall.
type QoEWeights struct {
	Lambda float64 // quality-variation weight (paper: 1)
	Mu     float64 // stall weight per second (paper: 100)
}

// DefaultQoEWeights returns the paper's λ=1, µ=100.
func DefaultQoEWeights() QoEWeights { return QoEWeights{Lambda: 1, Mu: 100} }

// Chunk scores one chunk: ssim and prevSSIM in dB, stall in seconds.
// Pass hasPrev=false for the first chunk of a stream (no variation term).
func (w QoEWeights) Chunk(ssim, prevSSIM, stall float64, hasPrev bool) float64 {
	q := ssim - w.Mu*stall
	if hasPrev {
		q -= w.Lambda * math.Abs(ssim-prevSSIM)
	}
	return q
}

// Transmission-time discretization, exactly as the paper's §4.5: 21 bins,
// [0, 0.25), [0.25, 0.75), ..., [9.75, ∞), i.e. 0.5-second bins except the
// first and last.
const NumBins = 21

// BinIndex maps a transmission time (seconds) to its bin.
func BinIndex(t float64) int {
	if t < 0.25 {
		return 0
	}
	i := 1 + int((t-0.25)/0.5)
	if i >= NumBins {
		return NumBins - 1
	}
	return i
}

// BinValue returns the representative transmission time of a bin: the bin
// center, 0.125 s for the first bin, and 14 s for the unbounded last bin.
// The tail representative deliberately exceeds the 15-second client buffer:
// an outcome in [9.75, ∞) on a heavy-tailed path is usually an outage, and
// the controller must see stall risk in it even from a full buffer.
func BinValue(i int) float64 {
	switch {
	case i <= 0:
		return 0.125
	case i >= NumBins-1:
		return 14.0
	default:
		return 0.5 * float64(i)
	}
}

// CatalogEntry describes a scheme for the paper's Figure 5 table.
type CatalogEntry struct {
	Name       string
	Control    string
	Predictor  string
	Objective  string
	HowTrained string
}

// Catalog returns the paper's Figure 5: the distinguishing features of every
// algorithm in the experiments.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"BBA", "classical (prop. control)", "n/a", "+SSIM s.t. bitrate < limit", "n/a"},
		{"MPC-HM", "classical (MPC)", "classical (HM)", "+SSIM, -stalls, -dSSIM", "n/a"},
		{"RobustMPC-HM", "classical (robust MPC)", "classical (HM)", "+SSIM, -stalls, -dSSIM", "n/a"},
		{"Pensieve", "learned (DNN)", "n/a", "+bitrate, -stalls, -dbitrate", "reinforcement learning in simulation"},
		{"Emulation-trained Fugu", "classical (MPC)", "learned (DNN)", "+SSIM, -stalls, -dSSIM", "supervised learning in emulation"},
		{"Fugu", "classical (MPC)", "learned (DNN)", "+SSIM, -stalls, -dSSIM", "supervised learning in situ"},
	}
}
