package netem

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// DaySampler is a Sampler whose path distribution depends on the experiment
// day — the nonstationarity hook the continual-experiment loop threads its
// day index through. Plain Samplers are stationary; SampleForDay adapts
// either kind.
type DaySampler interface {
	Sampler
	// SampleDay draws a path from day `day`'s distribution. It must be
	// deterministic given (rng state, duration, day): two calls with
	// identically-seeded RNGs and the same day yield byte-identical paths.
	SampleDay(rng *rand.Rand, duration float64, day int) Path
}

// SampleForDay draws a path from s for the given experiment day: day-aware
// samplers draw from that day's distribution, stationary samplers ignore the
// day. Stationary samplers consume exactly the same RNG draws as a direct
// Sample call, so threading a day through existing code changes nothing
// unless drift is configured.
func SampleForDay(s Sampler, rng *rand.Rand, duration float64, day int) Path {
	if ds, ok := s.(DaySampler); ok {
		return ds.SampleDay(rng, duration, day)
	}
	return s.Sample(rng, duration)
}

// DriftSchedule describes how a path population evolves over experiment
// days. The zero value means "no drift". Every knob is expressed per day so
// day 0 always reproduces the base family exactly; a knob only consumes RNG
// draws on days where it is active, so an all-zero schedule is draw-for-draw
// identical to sampling the base family directly.
type DriftSchedule struct {
	// RateFactorPerDay compounds a capacity trend: on day d every path's
	// capacity is multiplied by RateFactorPerDay^d (0.9 = the population
	// loses 10% of its capacity per day; 0 or 1 = no trend).
	RateFactorPerDay float64
	// RateFactorFloor bounds the compounded factor from below so long
	// runs settle at a shifted-down population instead of a dead network
	// (0 = no floor).
	RateFactorFloor float64
	// SigmaWidenPerDay widens the session-mean spread: on day d each
	// session's capacity is additionally multiplied by a lognormal factor
	// with log-std-dev d*SigmaWidenPerDay (0 = no widening).
	SigmaWidenPerDay float64
	// SlowSharePerDay grows the slow-path population: on day d an extra
	// min(d*SlowSharePerDay, SlowShareCap) fraction of sessions is
	// retargeted onto slow paths (session mean capped in the
	// [0.8, 4.5] Mbit/s band the paper calls "slow"). 0 = no growth.
	SlowSharePerDay float64
	// SlowShareCap bounds the extra slow share (0 = default 0.6).
	SlowShareCap float64
	// OutageRatePerDay ramps up deep outages: on day d an additional
	// Poisson outage process of rate d*OutageRatePerDay (outages per
	// second) is overlaid on every trace. 0 = no extra outages.
	OutageRatePerDay float64
	// OutageRateCap bounds the ramped rate (outages per second; 0 = no
	// cap).
	OutageRateCap float64
	// OutageDepth multiplies capacity during an overlaid outage
	// (0 = default 0.05).
	OutageDepth float64
	// OutageMeanDur is the mean overlaid-outage duration in seconds
	// (0 = default 4).
	OutageMeanDur float64
	// MixWith, when non-nil, interpolates the population toward a second
	// family: on day d a session is drawn from MixWith instead of the base
	// family with probability MixWeight(d), a piecewise-linear ramp from 0
	// at MixStartDay to 1 at MixStartDay+MixRampDays.
	MixWith Sampler
	// MixStartDay is the first day with nonzero mix weight
	// (sessions still come from the base family before it).
	MixStartDay int
	// MixRampDays is how many days the linear ramp takes to reach weight 1
	// (<= 0 = a step change at MixStartDay).
	MixRampDays int
}

// Defaults for the zero-valued DriftSchedule knobs.
const (
	defaultSlowShareCap  = 0.6
	defaultOutageDepth   = 0.05
	defaultOutageMeanDur = 4.0
	// The paper's "slow path" band: session means below 6 Mbit/s carry
	// most of the stalls; retargeted sessions land log-uniformly here.
	slowBandLo = 0.8e6
	slowBandHi = 4.5e6
)

// IsZero reports whether the schedule configures no drift at all.
func (s *DriftSchedule) IsZero() bool {
	return (s.RateFactorPerDay == 0 || s.RateFactorPerDay == 1) &&
		s.SigmaWidenPerDay == 0 && s.SlowSharePerDay == 0 &&
		s.OutageRatePerDay == 0 && s.MixWith == nil
}

// RateScale returns the compounded capacity factor for a day.
func (s *DriftSchedule) RateScale(day int) float64 {
	if s.RateFactorPerDay <= 0 || s.RateFactorPerDay == 1 || day <= 0 {
		return 1
	}
	f := math.Pow(s.RateFactorPerDay, float64(day))
	if s.RateFactorFloor > 0 && f < s.RateFactorFloor {
		f = s.RateFactorFloor
	}
	return f
}

// SigmaWiden returns the extra lognormal log-std-dev for a day.
func (s *DriftSchedule) SigmaWiden(day int) float64 {
	if s.SigmaWidenPerDay <= 0 || day <= 0 {
		return 0
	}
	return s.SigmaWidenPerDay * float64(day)
}

// SlowShare returns the extra slow-path fraction for a day.
func (s *DriftSchedule) SlowShare(day int) float64 {
	if s.SlowSharePerDay <= 0 || day <= 0 {
		return 0
	}
	limit := s.SlowShareCap
	if limit <= 0 {
		limit = defaultSlowShareCap
	}
	return math.Min(s.SlowSharePerDay*float64(day), limit)
}

// OutageRate returns the overlaid outage rate (per second) for a day.
func (s *DriftSchedule) OutageRate(day int) float64 {
	if s.OutageRatePerDay <= 0 || day <= 0 {
		return 0
	}
	r := s.OutageRatePerDay * float64(day)
	if s.OutageRateCap > 0 && r > s.OutageRateCap {
		r = s.OutageRateCap
	}
	return r
}

// MixWeight returns the probability a day-d session comes from MixWith.
func (s *DriftSchedule) MixWeight(day int) float64 {
	if s.MixWith == nil || day < s.MixStartDay {
		return 0
	}
	if s.MixRampDays <= 0 {
		return 1
	}
	w := float64(day-s.MixStartDay) / float64(s.MixRampDays)
	return math.Min(w, 1)
}

// outageDepth/outageMeanDur apply the zero-value defaults.
func (s *DriftSchedule) outageDepth() float64 {
	if s.OutageDepth <= 0 {
		return defaultOutageDepth
	}
	return s.OutageDepth
}

func (s *DriftSchedule) outageMeanDur() float64 {
	if s.OutageMeanDur <= 0 {
		return defaultOutageMeanDur
	}
	return s.OutageMeanDur
}

// Signature is a compact, deterministic encoding of every knob that shapes
// results. DriftingSampler.Name embeds it, which is how a drift config
// participates in the runner's checkpoint-manifest guard: resuming a
// checkpoint with a different schedule changes the name and is rejected.
func (s *DriftSchedule) Signature() string {
	if s.IsZero() {
		return "none"
	}
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.RateFactorPerDay > 0 && s.RateFactorPerDay != 1 {
		add("rate^%g>%g", s.RateFactorPerDay, s.RateFactorFloor)
	}
	if s.SigmaWidenPerDay > 0 {
		add("sigma+%g", s.SigmaWidenPerDay)
	}
	if s.SlowSharePerDay > 0 {
		add("slow+%g<%g", s.SlowSharePerDay, s.SlowShareCap)
	}
	if s.OutageRatePerDay > 0 {
		add("outage+%g<%g:%gx%g", s.OutageRatePerDay, s.OutageRateCap, s.outageDepth(), s.outageMeanDur())
	}
	if s.MixWith != nil {
		add("mix(%+v)@%d+%d", s.MixWith, s.MixStartDay, s.MixRampDays)
	}
	return strings.Join(parts, ",")
}

// Describe summarizes the effective distribution shift on a day, for
// progress logs and output tables ("" when the day is undrifted).
func (s *DriftSchedule) Describe(day int) string {
	if s.IsZero() {
		return ""
	}
	var parts []string
	if f := s.RateScale(day); f != 1 {
		parts = append(parts, fmt.Sprintf("rate x%.2f", f))
	}
	if sig := s.SigmaWiden(day); sig > 0 {
		parts = append(parts, fmt.Sprintf("sigma +%.2f", sig))
	}
	if sh := s.SlowShare(day); sh > 0 {
		parts = append(parts, fmt.Sprintf("slow +%.0f%%", 100*sh))
	}
	if r := s.OutageRate(day); r > 0 {
		parts = append(parts, fmt.Sprintf("outages +%.1f/h", 3600*r))
	}
	if w := s.MixWeight(day); w > 0 {
		parts = append(parts, fmt.Sprintf("%.0f%% %s", 100*w, s.MixWith.Name()))
	}
	return strings.Join(parts, ", ")
}

// DriftingSampler wraps any base Sampler with a DriftSchedule, yielding a
// day-indexed path family: SampleDay(rng, dur, d) draws from day d's
// distribution. Drift applies as post-processing on the sampled path
// (capacity scaling, slow-path retargeting, outage overlay) plus a
// population mix at the family level, so it composes with every family.
// Sampling is deterministic per (rng state, day), and a zero Schedule is
// draw-for-draw identical to the base sampler.
type DriftingSampler struct {
	Base     Sampler
	Schedule DriftSchedule
}

// Name identifies the base family plus the drift signature (see
// DriftSchedule.Signature for why the signature must be part of the name).
// A zero schedule keeps the base name, so wrapping without drift does not
// invalidate existing checkpoints.
func (d *DriftingSampler) Name() string {
	if d.Schedule.IsZero() {
		return d.Base.Name()
	}
	return d.Base.Name() + "+drift{" + d.Schedule.Signature() + "}"
}

// Sample implements Sampler by drawing from day 0 (which is always the
// undrifted base distribution).
func (d *DriftingSampler) Sample(rng *rand.Rand, duration float64) Path {
	return d.SampleDay(rng, duration, 0)
}

// SampleDay implements DaySampler. RNG draws happen in a fixed order —
// mix choice, base sample, sigma widening, slow retarget, outage overlay —
// and each post-processing step draws only on days where its knob is
// active, so determinism per (seed, day) holds for every schedule.
func (d *DriftingSampler) SampleDay(rng *rand.Rand, duration float64, day int) Path {
	sched := &d.Schedule
	base := d.Base
	if w := sched.MixWeight(day); w > 0 && rng.Float64() < w {
		base = sched.MixWith
	}
	p := base.Sample(rng, duration)

	scale := sched.RateScale(day)
	if sig := sched.SigmaWiden(day); sig > 0 {
		scale *= math.Exp(sig * rng.NormFloat64())
	}
	if share := sched.SlowShare(day); share > 0 && rng.Float64() < share {
		// Retarget this session into the slow band (log-uniform), unless
		// the drift so far already put it there.
		target := slowBandLo * math.Exp(rng.Float64()*math.Log(slowBandHi/slowBandLo))
		if mean := p.Trace.Mean() * scale; mean > target {
			scale *= target / mean
		}
	}
	if scale != 1 {
		scaleTrace(p.Trace, scale)
	}
	if orate := sched.OutageRate(day); orate > 0 {
		overlayOutages(rng, p.Trace, orate, sched.outageDepth(), sched.outageMeanDur())
	}
	return p
}

// scaleTrace multiplies every capacity sample, holding the generator's
// never-a-literal-zero-link floor.
func scaleTrace(tr *Trace, f float64) {
	for i, r := range tr.Rate {
		r *= f
		if r < 1e3 {
			r = 1e3
		}
		tr.Rate[i] = r
	}
}

// overlayOutages superimposes an independent Poisson outage process on a
// trace: outages arrive at `rate` per second, last Exp(meanDur), and
// multiply capacity by `depth` — the deep-trouble tail that grows under an
// outage-ramp drift.
func overlayOutages(rng *rand.Rand, tr *Trace, rate, depth, meanDur float64) {
	left := 0.0
	for i := range tr.Rate {
		if left > 0 {
			left -= tr.Interval
		} else if rng.Float64() < rate*tr.Interval {
			left = rng.ExpFloat64() * meanDur
		} else {
			continue
		}
		r := tr.Rate[i] * depth
		if r < 1e3 {
			r = 1e3
		}
		tr.Rate[i] = r
	}
}

// DriftPreset returns a named drift schedule for the puffer-daily CLI and
// the figures suite. Presets are deliberately strong: they exist to make
// the frozen-vs-retrained separation visible within a few simulated days
// (the paper's real deployment drifted over months).
//
//   - "none":  the stationary deployment (zero schedule).
//   - "decay": the population's capacity decays 40%/day, settling at a
//     tenth of its starting level — the whole path distribution slides
//     downward under the deployed model.
//   - "shift": the population composition shifts — the slow-path share
//     grows 30 points/day (capped at +90) and deep outages ramp up, while
//     the median fast path stays put.
//   - "mix":   the population migrates to a different family — an
//     increasing share of sessions (all of them by day 3) comes from a
//     congested variant of the deployment family (median 1.2 Mbit/s,
//     narrow spread).
func DriftPreset(name string) (DriftSchedule, error) {
	switch name {
	case "", "none":
		return DriftSchedule{}, nil
	case "decay":
		return DriftSchedule{RateFactorPerDay: 0.6, RateFactorFloor: 0.1}, nil
	case "shift":
		return DriftSchedule{
			SlowSharePerDay:  0.3,
			SlowShareCap:     0.9,
			OutageRatePerDay: 1.0 / 180,
			OutageRateCap:    1.0 / 90,
			OutageDepth:      0.03,
			OutageMeanDur:    8,
		}, nil
	case "mix":
		return DriftSchedule{
			MixWith:     PufferPaths{MedianRate: 1.2e6, Sigma: 0.5},
			MixStartDay: 0,
			MixRampDays: 3,
		}, nil
	default:
		return DriftSchedule{}, fmt.Errorf("netem: unknown drift preset %q (want none, decay, shift, or mix)", name)
	}
}
